package experiment

import (
	"fmt"
	"sync"
	"time"

	"p2psplice/internal/container"
	"p2psplice/internal/media"
	"p2psplice/internal/simpeer"
	"p2psplice/internal/splicer"
)

// The five figures used to re-synthesize and re-splice the same clip for
// every series of every sweep — Figures 2 and 3 alone splice the identical
// video eight times. Synthesis and splicing are deterministic functions of
// (encoder config, clip duration, video seed) and the splicer, so this file
// memoizes both process-wide. Entries are created under a mutex and filled
// through sync.Once, so concurrent workers that race on a cold key
// synthesize exactly once and everyone blocks on the same entry.
//
// Cached values are shared: the *media.Video is handed out as-is (splicers
// and the swarm treat videos as read-only), while segment-meta slices are
// copied on every lookup so no caller can reach another's backing array.

// videoKey identifies a synthesized clip. media.EncoderConfig is a flat
// comparable struct, so the key is usable directly as a map key.
type videoKey struct {
	enc  media.EncoderConfig
	dur  time.Duration
	seed int64
}

// segKey identifies a spliced segment list: the clip plus the splicer's
// identity (type and configuration, e.g. "splicer.DurationSplicer{Target:4s}").
type segKey struct {
	video     videoKey
	splicerID string
}

// splicerIdentity renders a splicer's type and value as a cache key
// component. Splicers in this repo are value types whose fields fully
// determine their output, so type+value is a complete identity.
func splicerIdentity(sp splicer.Splicer) string {
	return fmt.Sprintf("%T%+v", sp, sp)
}

type videoEntry struct {
	once sync.Once
	v    *media.Video
	err  error
}

type segEntry struct {
	once sync.Once
	segs []simpeer.SegmentMeta
	err  error
}

// clipCache memoizes synthesized videos and spliced segment metadata.
type clipCache struct {
	mu     sync.Mutex // guards videos and segs
	videos map[videoKey]*videoEntry
	segs   map[segKey]*segEntry
}

// globalClips is the process-wide cache behind Params.Video and
// Params.Segments. Experiments across figures (and benchmark iterations)
// share it; keys carry every input that determines the output, so sharing
// cannot change results.
var globalClips = &clipCache{
	videos: make(map[videoKey]*videoEntry),
	segs:   make(map[segKey]*segEntry),
}

// videoEntryFor returns the (possibly new) entry for k.
func (c *clipCache) videoEntryFor(k videoKey) *videoEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.videos[k]
	if !ok {
		e = &videoEntry{}
		c.videos[k] = e
	}
	return e
}

// segEntryFor returns the (possibly new) entry for k.
func (c *clipCache) segEntryFor(k segKey) *segEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.segs[k]
	if !ok {
		e = &segEntry{}
		c.segs[k] = e
	}
	return e
}

// video returns the memoized clip for k, synthesizing on first use.
func (c *clipCache) video(k videoKey) (*media.Video, error) {
	e := c.videoEntryFor(k)
	e.once.Do(func() {
		e.v, e.err = media.Synthesize(k.enc, k.dur, k.seed)
	})
	return e.v, e.err
}

// segments returns a fresh copy of the memoized segment metadata for k,
// splicing on first use. The copy keeps callers from aliasing each other's
// slices (SegmentMeta elements are plain values, so a shallow copy is a
// full one).
func (c *clipCache) segments(k segKey, sp splicer.Splicer) ([]simpeer.SegmentMeta, error) {
	e := c.segEntryFor(k)
	e.once.Do(func() {
		v, err := c.video(k.video)
		if err != nil {
			e.err = err
			return
		}
		segs, err := sp.Splice(v)
		if err != nil {
			e.err = err
			return
		}
		e.segs = segmentMeta(segs)
	})
	if e.err != nil {
		return nil, e.err
	}
	out := make([]simpeer.SegmentMeta, len(e.segs))
	copy(out, e.segs)
	return out, nil
}

// segmentMeta converts spliced segments to swarm-level metadata, with wire
// sizes accounting for the container framing.
func segmentMeta(segs []splicer.Segment) []simpeer.SegmentMeta {
	out := make([]simpeer.SegmentMeta, len(segs))
	for i, s := range segs {
		out[i] = simpeer.SegmentMeta{
			Bytes:    container.WireSize(len(s.Frames), s.Bytes()),
			Duration: s.Duration(),
		}
	}
	return out
}

// videoKey builds the cache key for p's clip.
func (p Params) videoKey() videoKey {
	return videoKey{enc: p.Encoder, dur: p.ClipDuration, seed: p.VideoSeed}
}
