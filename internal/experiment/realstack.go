package experiment

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"p2psplice/internal/container"
	"p2psplice/internal/core"
	"p2psplice/internal/metrics"
	"p2psplice/internal/peer"
	"p2psplice/internal/shaper"
	"p2psplice/internal/splicer"
	"p2psplice/internal/tracker"
)

// RealStackConfig configures a real-TCP validation run: an in-process
// tracker, a seeder, and N viewing peers over loopback sockets, with
// optional link shaping. It exists to cross-validate the emulation — the
// same splicer, policy, and player code paths run over real TCP and report
// the same metrics.
type RealStackConfig struct {
	// Clip is the video length. Real runs take at least download time plus
	// clip time; keep it short.
	Clip time.Duration
	// Rate is the clip's coded rate in bytes/second.
	Rate int64
	// Seed fixes the synthetic clip.
	Seed int64
	// Splicer cuts the clip. Nil defaults to 2-second duration splicing.
	Splicer splicer.Splicer
	// Viewers is the number of leechers. Must be at least 1.
	Viewers int
	// Policy is the download policy. Nil defaults to core.AdaptivePool.
	Policy core.Policy
	// Shape optionally shapes every node's connections.
	Shape *shaper.Config
	// Timeout bounds the whole run. Zero defaults to 2 minutes.
	Timeout time.Duration
}

// RealStackRun executes the run and returns one playback sample per viewer.
func RealStackRun(cfg RealStackConfig) ([]metrics.PlaybackSample, error) {
	if cfg.Viewers < 1 {
		return nil, fmt.Errorf("experiment: need at least 1 viewer, got %d", cfg.Viewers)
	}
	if cfg.Clip <= 0 {
		return nil, fmt.Errorf("experiment: clip duration must be positive, got %v", cfg.Clip)
	}
	sp := cfg.Splicer
	if sp == nil {
		sp = splicer.DurationSplicer{Target: 2 * time.Second}
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}

	p := DefaultParams()
	p.ClipDuration = cfg.Clip
	if cfg.Rate > 0 {
		p.Encoder.BytesPerSecond = cfg.Rate
	}
	if cfg.Seed != 0 {
		p.VideoSeed = cfg.Seed
	}
	v, err := p.Video()
	if err != nil {
		return nil, err
	}
	segs, err := sp.Splice(v)
	if err != nil {
		return nil, err
	}
	m, blobs, err := buildManifest(v.Duration(), p.Encoder.BytesPerSecond, p.VideoSeed, sp.Name(), segs)
	if err != nil {
		return nil, err
	}

	// In-process tracker.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("experiment: tracker listen: %w", err)
	}
	//lint:ignore detercall the real-stack bridge deliberately leaves the deterministic world; the tracker's wall-clock expiry is part of what it measures
	srv := &http.Server{Handler: tracker.NewServer().Handler()}
	var srvWG sync.WaitGroup
	srvWG.Add(1)
	go func() {
		defer srvWG.Done()
		_ = srv.Serve(ln) // returns http.ErrServerClosed after Close
	}()
	defer func() {
		_ = srv.Close()
		srvWG.Wait()
	}()
	trk := tracker.NewClient("http://"+ln.Addr().String(), nil)

	nodeCfg := peer.Config{
		Policy:           cfg.Policy,
		AnnounceInterval: 200 * time.Millisecond,
		Shape:            cfg.Shape,
	}
	//lint:ignore detercall real peers time playback on the wall clock by design; RealStackRun exists to compare them against the emulation
	seeder, err := peer.Seed(trk, m, blobs, nodeCfg)
	if err != nil {
		return nil, err
	}
	//lint:ignore detercall shutdown tears down connections in map order; nothing downstream observes the order
	defer seeder.Close()

	var viewers []*peer.Node
	defer func() {
		for _, n := range viewers {
			n.Close()
		}
	}()
	for i := 0; i < cfg.Viewers; i++ {
		//lint:ignore detercall real peers time playback on the wall clock by design; RealStackRun exists to compare them against the emulation
		n, err := peer.Join(trk, seeder.InfoHash(), nodeCfg)
		if err != nil {
			return nil, err
		}
		viewers = append(viewers, n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var out []metrics.PlaybackSample
	for i, n := range viewers {
		if err := n.WaitComplete(ctx); err != nil {
			return nil, fmt.Errorf("experiment: viewer %d: %w", i, err)
		}
	}
	// Downloads are done; playback may still be draining. The paper's
	// metrics are known exactly at this point: no further stalls can occur,
	// so project to the finish just as the emulation does.
	for i, n := range viewers {
		//lint:ignore detercall real playback metrics are wall-clock measurements; that is the comparison RealStackRun reports
		pm := n.Playback()
		out = append(out, metrics.PlaybackSample{
			Peer:       i + 1,
			Startup:    pm.StartupTime,
			Stalls:     pm.Stalls,
			TotalStall: pm.TotalStall,
			Finished:   true,
		})
	}
	return out, nil
}

// buildManifest mirrors container.BuildManifest with explicit clip metadata.
func buildManifest(clip time.Duration, rate, seed int64, splicing string, segs []splicer.Segment) (*container.Manifest, [][]byte, error) {
	return container.BuildManifest(container.ClipInfo{
		Duration:       clip,
		BytesPerSecond: rate,
		Seed:           seed,
	}, splicing, segs)
}
