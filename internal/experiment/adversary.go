package experiment

import (
	"fmt"
	"time"

	"p2psplice/internal/core"
	"p2psplice/internal/fault"
	"p2psplice/internal/metrics"
	"p2psplice/internal/reputation"
	"p2psplice/internal/simpeer"
	"p2psplice/internal/splicer"
)

// AdversaryLevel is one x-axis point of the adversary figure: the
// fraction of leechers that are intermittent polluters.
type AdversaryLevel struct {
	Name string
	// PolluterPct is the share of leechers turned into polluters,
	// in percent of the leecher count (rounded down, at least one
	// when non-zero).
	PolluterPct float64
}

// AdversaryLevels returns the default adversary axis: an honest swarm,
// then 10/25/50% of the leechers polluting.
func AdversaryLevels() []AdversaryLevel {
	return []AdversaryLevel{
		{Name: "honest", PolluterPct: 0},
		{Name: "10% polluters", PolluterPct: 10},
		{Name: "25% polluters", PolluterPct: 25},
		{Name: "50% polluters", PolluterPct: 50},
	}
}

// adversaryBandwidthKB fixes the access bandwidth for the adversary
// sweep: the axis under study is the polluter fraction, not bandwidth.
const adversaryBandwidthKB = 256

// adversaryPollutePct is each polluter's per-attempt pollution rate. The
// draws are pure hashes of (seed, src, dst, seg, attempt), so an honest
// retry eventually lands even from a polluting source.
const adversaryPollutePct = 60

// polluterNodes spreads n polluters across the leecher IDs 1..leechers
// evenly, so the adversaries are interleaved with honest viewers rather
// than clustered at the low IDs that join first.
func polluterNodes(leechers int, pct float64) []int {
	n := int(float64(leechers) * pct / 100)
	if pct > 0 && n == 0 {
		n = 1
	}
	if n > leechers {
		n = leechers
	}
	nodes := make([]int, n)
	for i := 0; i < n; i++ {
		nodes[i] = 1 + i*leechers/n
	}
	return nodes
}

// adversaryMod returns the per-cell config hook for one level of one
// series: it installs the polluter plans for the level's adversary
// fraction and, when rep is non-nil, the reputation/quarantine config.
// Pollution draws hash the run's seed, so cells stay bit-reproducible
// and byte-identical across -workers values.
func (p Params) adversaryMod(lv AdversaryLevel, rep *reputation.Config) func(*simpeer.SwarmConfig) {
	return func(cfg *simpeer.SwarmConfig) {
		cfg.Reputation = rep
		if lv.PolluterPct <= 0 {
			return
		}
		horizon := 2*p.ClipDuration + 30*time.Second
		nodes := polluterNodes(cfg.Leechers, lv.PolluterPct)
		plans := make([]fault.Plan, 0, len(nodes))
		for _, node := range nodes {
			plans = append(plans, fault.Polluter(node, 0, horizon, adversaryPollutePct))
		}
		cfg.Faults = fault.Merge(plans...)
	}
}

// FigAdversary runs the adversarial-peer experiment: GOP versus 4 s
// duration splicing, each with the reputation/quarantine subsystem on
// and off, as a growing fraction of the leechers becomes intermittent
// polluters (60% per-attempt pollution), at a fixed 256 kB/s. The
// measure is combined badness — startup time plus total stall seconds —
// over the honest viewers only (adversarial nodes are excluded from the
// swarm samples). Not one of the paper's figures; it probes how much of
// the splicing schemes' QoE survives pollution, and how much the
// reputation subsystem buys back.
func (p Params) FigAdversary(levels []AdversaryLevel) (*FigureResult, error) {
	if len(levels) == 0 {
		levels = AdversaryLevels()
	}
	repOn := reputation.Default()
	series := []struct {
		name string
		sp   splicer.Splicer
		rep  *reputation.Config
	}{
		{"gop rep-on", splicer.GOPSplicer{}, &repOn},
		{"gop rep-off", splicer.GOPSplicer{}, nil},
		{"4s rep-on", splicer.DurationSplicer{Target: 4 * time.Second}, &repOn},
		{"4s rep-off", splicer.DurationSplicer{Target: 4 * time.Second}, nil},
	}
	names := make([]string, len(levels))
	for i, lv := range levels {
		names[i] = lv.Name
	}
	fig := metrics.Figure{
		Title:   "Adversary: honest-viewer startup + stall seconds vs polluter fraction (256 kB/s)",
		XLabel:  "Adversaries",
		XValues: names,
	}

	var cells []cell
	for _, s := range series {
		segs, err := p.Segments(s.sp)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.sp.Name(), err)
		}
		for _, lv := range levels {
			mod := p.adversaryMod(lv, s.rep)
			for r := 0; r < p.Runs; r++ {
				cells = append(cells, cell{
					label:       "Adversary/" + s.name + "/" + lv.Name,
					segs:        segs,
					bandwidthKB: adversaryBandwidthKB,
					policy:      core.AdaptivePool{},
					mod:         mod,
					run:         r,
				})
			}
		}
	}
	outs, err := p.runCells(cells)
	if err != nil {
		return nil, err
	}
	res := &FigureResult{Values: make(map[string][]float64)}
	k := 0
	for _, s := range series {
		nums := make([]float64, len(levels))
		strs := make([]string, len(levels))
		for j := range levels {
			pt := averageCells(adversaryBandwidthKB, outs[k:k+p.Runs])
			k += p.Runs
			nums[j] = pt.StartupSecs + pt.StallSeconds
			strs[j] = metrics.FormatSeconds(nums[j])
		}
		res.Values[s.name] = nums
		fig.AddSeries(s.name, strs)
	}
	res.Figure = fig
	return res, nil
}
