package experiment

import (
	"strings"
	"testing"
	"time"

	"p2psplice/internal/core"
	"p2psplice/internal/splicer"
)

// testParams keeps the sweeps small enough for CI while preserving shapes.
func testParams() Params {
	p := QuickParams()
	p.ClipDuration = 30 * time.Second
	p.Leechers = 5
	return p
}

func TestSegments(t *testing.T) {
	p := testParams()
	for _, sp := range SplicingSet() {
		segs, err := p.Segments(sp)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name(), err)
		}
		if len(segs) == 0 {
			t.Fatalf("%s: no segments", sp.Name())
		}
		v, err := p.Video()
		if err != nil {
			t.Fatal(err)
		}
		var total time.Duration
		for i, s := range segs {
			if s.Bytes <= 0 || s.Duration <= 0 {
				t.Errorf("%s segment %d: %+v", sp.Name(), i, s)
			}
			total += s.Duration
		}
		// The clip rounds down to a whole number of frames.
		if total != v.Duration() {
			t.Errorf("%s: segments cover %v, want %v", sp.Name(), total, v.Duration())
		}
	}
}

func TestSegmentsIncludeContainerFraming(t *testing.T) {
	p := testParams()
	v, err := p.Video()
	if err != nil {
		t.Fatal(err)
	}
	segs, err := p.Segments(splicer.GOPSplicer{})
	if err != nil {
		t.Fatal(err)
	}
	var wire int64
	for _, s := range segs {
		wire += s.Bytes
	}
	if wire <= v.TotalBytes() {
		t.Errorf("wire bytes %d should exceed source %d (container framing)", wire, v.TotalBytes())
	}
}

func TestFig2StallsDecreaseWithBandwidth(t *testing.T) {
	p := testParams()
	res, err := p.Fig2Stalls([]int64{128, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Figure.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"gop", "2s", "4s", "8s"} {
		vals := res.Series(name)
		if len(vals) != 2 {
			t.Fatalf("series %q has %d values", name, len(vals))
		}
		if vals[1] > vals[0] {
			t.Errorf("%s: stalls increased with bandwidth: %v", name, vals)
		}
	}
}

func TestFig3SeriesComplete(t *testing.T) {
	// Ordering claims about Figure 3 only emerge at the paper's full scale
	// (19 leechers, 2-minute clip; see EXPERIMENTS.md); at test scale we
	// check the harness produces a complete, valid figure.
	p := testParams()
	res, err := p.Fig3StallDuration([]int64{128, 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Figure.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"gop", "2s", "4s", "8s"} {
		if len(res.Series(name)) != 2 {
			t.Errorf("series %q incomplete", name)
		}
	}
}

func TestFig4StartupShape(t *testing.T) {
	p := testParams()
	res, err := p.Fig4Startup([]int64{128, 1024})
	if err != nil {
		t.Fatal(err)
	}
	s2, s4, s8 := res.Series("2s"), res.Series("4s"), res.Series("8s")
	// Startup grows with segment duration at every bandwidth.
	for i := range s2 {
		if !(s2[i] < s4[i] && s4[i] < s8[i]) {
			t.Errorf("startup not monotone in segment duration at x=%d: 2s=%v 4s=%v 8s=%v",
				i, s2[i], s4[i], s8[i])
		}
	}
	// Startup shrinks with bandwidth for every series.
	for _, s := range [][]float64{s2, s4, s8} {
		if s[1] > s[0] {
			t.Errorf("startup increased with bandwidth: %v", s)
		}
	}
}

func TestFig5PoolingShape(t *testing.T) {
	p := testParams()
	res, err := p.Fig5Pooling([]int64{768})
	if err != nil {
		t.Fatal(err)
	}
	// At high bandwidth every policy plays nearly stall-free.
	for name, vals := range res.Values {
		if vals[0] > 2 {
			t.Errorf("%s: %v stalls at 768 kB/s, want near zero", name, vals[0])
		}
	}
}

func TestFig5AdaptiveStartupAdvantage(t *testing.T) {
	// The structural advantage of Equation 1 in every configuration we
	// measured: at T=0 it downloads exactly one segment, so playback starts
	// sooner than any large fixed pool.
	p := testParams()
	segs, err := p.Segments(splicer.DurationSplicer{Target: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := p.runPoint("test/adaptive", segs, 128, core.AdaptivePool{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool8, err := p.runPoint("test/pool-8", segs, 128, core.FixedPool{K: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.StartupSecs >= pool8.StartupSecs {
		t.Errorf("adaptive startup %v not better than pool-8 %v at 128 kB/s",
			adaptive.StartupSecs, pool8.StartupSecs)
	}
}

func TestSpliceOverheadTable(t *testing.T) {
	p := testParams()
	res, err := p.SpliceOverheadTable()
	if err != nil {
		t.Fatal(err)
	}
	gop := res.Series("gop")[0]
	s2 := res.Series("2s")[0]
	s4 := res.Series("4s")[0]
	s8 := res.Series("8s")[0]
	if gop != 0 {
		t.Errorf("GOP overhead = %v%%, want 0", gop)
	}
	if !(s2 > s4 && s4 > s8 && s8 > 0) {
		t.Errorf("overhead not monotone: 2s=%v 4s=%v 8s=%v", s2, s4, s8)
	}
	if !strings.Contains(res.Figure.Render(), "overhead") {
		t.Error("rendered table missing overhead row")
	}
}

func TestFiguresDeterministic(t *testing.T) {
	p := testParams()
	a, err := p.Fig5Pooling([]int64{256})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Fig5Pooling([]int64{256})
	if err != nil {
		t.Fatal(err)
	}
	for name, av := range a.Values {
		bv := b.Values[name]
		for i := range av {
			if av[i] != bv[i] {
				t.Errorf("%s[%d]: %v vs %v", name, i, av[i], bv[i])
			}
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	p := testParams()
	p.Encoder.FPS = 0
	if _, err := p.Fig2Stalls(nil); err == nil {
		t.Error("invalid encoder: want error")
	}
	if _, err := p.Fig4Startup(nil); err == nil {
		t.Error("invalid encoder: want error")
	}
	if _, err := p.Fig5Pooling(nil); err == nil {
		t.Error("invalid encoder: want error")
	}
	if _, err := p.SpliceOverheadTable(); err == nil {
		t.Error("invalid encoder: want error")
	}
	bad := testParams()
	bad.Leechers = 0
	if _, err := bad.Fig2Stalls([]int64{128}); err == nil {
		t.Error("invalid swarm: want error")
	}
}

func TestDefaultAxes(t *testing.T) {
	p := testParams()
	res, err := p.Fig2Stalls(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Figure.XValues) != len(Fig2Bandwidths) {
		t.Errorf("default Fig2 axis has %d points, want %d", len(res.Figure.XValues), len(Fig2Bandwidths))
	}
}

func TestFig6AdaptiveTracksBestFixed(t *testing.T) {
	p := testParams()
	res, err := p.Fig6AdaptiveSplicing([]int64{256, 768})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Figure.Validate(); err != nil {
		t.Fatal(err)
	}
	adaptive := res.Series("adaptive")
	for i := range adaptive {
		best := res.Series("2s")[i]
		for _, name := range []string{"4s", "8s"} {
			if v := res.Series(name)[i]; v < best {
				best = v
			}
		}
		// Adaptive should stay within 2.5x of the best fixed duration at
		// every bandwidth (it cannot beat an oracle that already knows B,
		// but it must not collapse).
		if adaptive[i] > best*2.5+2 {
			t.Errorf("x=%d: adaptive %.1f vs best fixed %.1f", i, adaptive[i], best)
		}
	}
}
