package experiment

import (
	"reflect"
	"testing"
	"time"
)

// churnTestParams is a small grid: enough swarm to crash peers in,
// quick enough for the ordinary test run.
func churnTestParams() Params {
	p := QuickParams()
	p.ClipDuration = 24 * time.Second
	p.Leechers = 5
	return p
}

// TestFigChurnShape checks the figure's structure: every series is
// present with one value per churn level, and values are finite.
func TestFigChurnShape(t *testing.T) {
	p := churnTestParams()
	res, err := p.FigChurn(nil)
	if err != nil {
		t.Fatal(err)
	}
	levels := ChurnLevels()
	wantSeries := []string{"gop adaptive", "gop fixed-4", "4s adaptive", "4s fixed-4"}
	if len(res.Values) != len(wantSeries) {
		t.Fatalf("figure has %d series, want %d", len(res.Values), len(wantSeries))
	}
	for _, name := range wantSeries {
		vals := res.Series(name)
		if len(vals) != len(levels) {
			t.Fatalf("series %q has %d values for %d levels", name, len(vals), len(levels))
		}
		for i, v := range vals {
			if v < 0 {
				t.Errorf("series %q level %s: negative badness %g", name, levels[i].Name, v)
			}
		}
	}
	if got := len(res.Figure.XValues); got != len(levels) {
		t.Errorf("x axis has %d labels, want %d", got, len(levels))
	}
}

// TestFigChurnDeterministicAcrossWorkers requires the seeded churn
// sweep to be bit-identical between the serial and the parallel runner:
// fault plans derive from each cell's own seed, never from shared or
// scheduling-dependent state.
func TestFigChurnDeterministicAcrossWorkers(t *testing.T) {
	serial := churnTestParams()
	serial.Workers = 1
	parallel := churnTestParams()
	parallel.Workers = 4

	a, err := serial.FigChurn(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.FigChurn(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Values, b.Values) {
		t.Errorf("churn figure differs between workers=1 and workers=4:\nserial:   %v\nparallel: %v",
			a.Values, b.Values)
	}
}
