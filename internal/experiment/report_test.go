package experiment

import (
	"bytes"
	"testing"

	"p2psplice/internal/tracereport"
)

// renderTraceReport runs the churn figure with the given worker count,
// analyzes its trace directory, and returns every serialized form of the
// report (JSON, table, stall CDF).
func renderTraceReport(t *testing.T, workers int) (json, table, cdf string) {
	t.Helper()
	p := tracedParams()
	p.TraceDir = t.TempDir()
	p.Workers = workers
	if _, err := p.FigChurn(nil); err != nil {
		t.Fatal(err)
	}
	a, err := tracereport.AnalyzeDir(p.TraceDir)
	if err != nil {
		t.Fatal(err)
	}
	var j, tb, c bytes.Buffer
	if err := tracereport.WriteJSON(&j, a.Report); err != nil {
		t.Fatal(err)
	}
	if err := tracereport.WriteTable(&tb, a.Report); err != nil {
		t.Fatal(err)
	}
	if err := tracereport.WriteCDF(&c, "stall", a.StallUS); err != nil {
		t.Fatal(err)
	}
	return j.String(), tb.String(), c.String()
}

// The trace-dir report (cmd/experiment's report.json, splicetrace's
// output) must be byte-identical across repeated runs and across
// -workers values, and the churn figure's stalls must be 100% attributed.
func TestTraceReportIdenticalAcrossWorkers(t *testing.T) {
	jSerial, tSerial, cSerial := renderTraceReport(t, 1)
	jSerial2, tSerial2, cSerial2 := renderTraceReport(t, 1)
	if jSerial != jSerial2 || tSerial != tSerial2 || cSerial != cSerial2 {
		t.Fatal("serial trace report not reproducible across runs")
	}
	jPar, tPar, cPar := renderTraceReport(t, 4)
	if jSerial != jPar {
		t.Errorf("report.json differs between workers=1 and workers=4:\n--- serial ---\n%s\n--- parallel ---\n%s", jSerial, jPar)
	}
	if tSerial != tPar {
		t.Error("report table differs between workers=1 and workers=4")
	}
	if cSerial != cPar {
		t.Error("stall CDF differs between workers=1 and workers=4")
	}
}

// The churn figure injects faults, so its trace dir must both contain
// stalls and attribute every one of them (the acceptance criterion).
func TestChurnTraceReportFullyAttributed(t *testing.T) {
	p := tracedParams()
	p.TraceDir = t.TempDir()
	if _, err := p.FigChurn(nil); err != nil {
		t.Fatal(err)
	}
	a, err := tracereport.AnalyzeDir(p.TraceDir)
	if err != nil {
		t.Fatal(err)
	}
	r := a.Report
	if r.Stalls.Count == 0 {
		t.Fatal("churn figure traced no stalls; attribution untested")
	}
	if r.Stalls.Attributed != r.Stalls.Count {
		t.Errorf("%d of %d stalls unattributed", r.Stalls.Count-r.Stalls.Attributed, r.Stalls.Count)
	}
	if r.Stalls.AttributedPct != 100 {
		t.Errorf("attributed pct = %v, want 100", r.Stalls.AttributedPct)
	}
	if len(r.Causes) == 0 {
		t.Error("no cause breakdown rows")
	}
}

// renderAdversaryReport runs the adversary figure with the given worker
// count and returns the serialized trace report.
func renderAdversaryReport(t *testing.T, workers int) (json, table string) {
	t.Helper()
	p := tracedParams()
	p.TraceDir = t.TempDir()
	p.Workers = workers
	if _, err := p.FigAdversary(nil); err != nil {
		t.Fatal(err)
	}
	a, err := tracereport.AnalyzeDir(p.TraceDir)
	if err != nil {
		t.Fatal(err)
	}
	var j, tb bytes.Buffer
	if err := tracereport.WriteJSON(&j, a.Report); err != nil {
		t.Fatal(err)
	}
	if err := tracereport.WriteTable(&tb, a.Report); err != nil {
		t.Fatal(err)
	}
	return j.String(), tb.String()
}

// The adversary figure's trace report — including the per-peer
// reputation rollup — must be byte-identical across -workers values.
func TestAdversaryTraceReportIdenticalAcrossWorkers(t *testing.T) {
	jSerial, tSerial := renderAdversaryReport(t, 1)
	jPar, tPar := renderAdversaryReport(t, 4)
	if jSerial != jPar {
		t.Errorf("adversary report.json differs between workers=1 and workers=4:\n--- serial ---\n%s\n--- parallel ---\n%s", jSerial, jPar)
	}
	if tSerial != tPar {
		t.Error("adversary report table differs between workers=1 and workers=4")
	}
}

// The adversary figure quarantines polluters, so its trace dir must show
// reputation rollup rows, and every stall — peer_quarantined included —
// must be attributed (the acceptance criterion).
func TestAdversaryTraceReportReputationAndAttribution(t *testing.T) {
	p := tracedParams()
	p.TraceDir = t.TempDir()
	if _, err := p.FigAdversary(nil); err != nil {
		t.Fatal(err)
	}
	a, err := tracereport.AnalyzeDir(p.TraceDir)
	if err != nil {
		t.Fatal(err)
	}
	r := a.Report
	if len(r.Reputation) == 0 {
		t.Fatal("adversary figure traced no reputation rows")
	}
	var quarantines, quarUS int64
	for _, rp := range r.Reputation {
		quarantines += rp.Quarantines
		quarUS += rp.QuarantineUS
	}
	if quarantines == 0 || quarUS == 0 {
		t.Errorf("rollup shows %d quarantines over %dus; polluters should have been banned", quarantines, quarUS)
	}
	if r.Stalls.Attributed != r.Stalls.Count {
		t.Errorf("%d of %d stalls unattributed", r.Stalls.Count-r.Stalls.Attributed, r.Stalls.Count)
	}
}
