package experiment

import (
	"fmt"
	"strconv"
	"time"

	"p2psplice/internal/core"
	"p2psplice/internal/metrics"
	"p2psplice/internal/splicer"
)

// Fig6AdaptiveSplicing runs the experiment the paper proposes as future work
// ("an adaptive splicing technique will be able to increase the performance
// of P2P video streaming"): instead of one fixed segment duration for every
// deployment, the seeder splices the clip per swarm using the Section IV
// bound — target duration = B·T/rate, clamped — and the figure compares that
// against the fixed 2 s / 4 s / 8 s splicings across the bandwidth sweep.
//
// The adaptive splicer uses each sweep point's bandwidth with a 4-second
// buffer-depth assumption, so at 128 kB/s it picks small segments (fast
// startup, cheap stalls) and at 1024 kB/s it picks large ones (low overhead,
// high throughput).
func (p Params) Fig6AdaptiveSplicing(bandwidths []int64) (*FigureResult, error) {
	if len(bandwidths) == 0 {
		bandwidths = Fig2Bandwidths
	}
	fig := metrics.Figure{
		Title:   "Figure 6 (extension): adaptive splicing vs fixed durations",
		XLabel:  "Available Bandwidth (kB/s)",
		XValues: bandwidthLabels(bandwidths),
	}
	res := &FigureResult{Values: make(map[string][]float64)}

	// Fixed-duration baselines: one spec each over the full axis.
	fixed := []time.Duration{2 * time.Second, 4 * time.Second, 8 * time.Second}
	specs := make([]sweepSpec, 0, len(fixed)+len(bandwidths))
	for _, target := range fixed {
		sp := splicer.DurationSplicer{Target: target}
		segs, err := p.Segments(sp)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sp.Name(), err)
		}
		specs = append(specs, sweepSpec{
			name:       sp.Name(),
			label:      "Figure 6/" + sp.Name(),
			segs:       segs,
			policy:     core.AdaptivePool{},
			bandwidths: bandwidths,
		})
	}

	// Adaptive splicing: the segment duration is chosen per bandwidth with
	// the OptimalDuration algorithm (the smallest duration whose
	// overhead-inflated demand fits the link), so each bandwidth gets its
	// own splicing — one single-bandwidth spec per sweep point.
	targets := make([]string, len(bandwidths))
	v, err := p.Video()
	if err != nil {
		return nil, err
	}
	for i, bw := range bandwidths {
		// Safety 0.6: a swarm peer's link also carries relaying and
		// pipeline-chain overheads that a point-to-point demand model does
		// not see, so leave substantial headroom.
		target, err := splicer.OptimalDuration(v, bw*1024, 50*time.Millisecond, 0.6)
		if err != nil {
			return nil, err
		}
		targets[i] = target.String()
		segs, err := p.Segments(splicer.DurationSplicer{Target: target})
		if err != nil {
			return nil, err
		}
		specs = append(specs, sweepSpec{
			name:       "adaptive",
			label:      "Figure 6/adaptive@" + strconv.FormatInt(bw, 10),
			segs:       segs,
			policy:     core.AdaptivePool{},
			bandwidths: []int64{bw},
		})
	}

	points, err := p.runSweeps(specs)
	if err != nil {
		return nil, err
	}
	for i := range fixed {
		sp := splicer.DurationSplicer{Target: fixed[i]}
		res.Values[sp.Name()] = series(points[i], combinedBadness)
		fig.AddSeries(sp.Name(), renderSeries(res.Values[sp.Name()]))
	}
	nums := make([]float64, len(bandwidths))
	for i := range bandwidths {
		nums[i] = combinedBadness(points[len(fixed)+i][0])
	}
	res.Values["adaptive"] = nums
	fig.AddSeries("adaptive", renderSeries(nums))
	fig.AddSeries("adaptive target", targets)
	res.Figure = fig
	return res, nil
}

// combinedBadness is the figure's y-value: startup plus total stall time in
// seconds — the viewer-visible waiting a splicing causes. (Stall count alone
// hides the granularity trade-off; see EXPERIMENTS.md.)
func combinedBadness(pt Point) float64 { return pt.StartupSecs + pt.StallSeconds }

func series(points []Point, f func(Point) float64) []float64 {
	out := make([]float64, len(points))
	for i, pt := range points {
		out[i] = f(pt)
	}
	return out
}

func renderSeries(vals []float64) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = strconv.FormatFloat(v, 'f', 1, 64)
	}
	return out
}
