package experiment

import (
	"strings"
	"testing"
	"time"

	"p2psplice/internal/core"
	"p2psplice/internal/splicer"
)

// TestRunCellErrorAttribution: a failure inside a parallel fan-out must
// name the figure/series that scheduled the cell, the bandwidth, and the
// run index — "bandwidth 128 kB/s" alone is unattributable once dozens of
// cells are in flight.
func TestRunCellErrorAttribution(t *testing.T) {
	p := testParams()
	segs, err := p.Segments(splicer.GOPSplicer{})
	if err != nil {
		t.Fatal(err)
	}
	p.Leechers = 0 // invalid swarm: the cell fails
	_, err = p.runCell(cell{
		label:       "Figure 9/test-series",
		segs:        segs,
		bandwidthKB: 128,
		policy:      core.AdaptivePool{},
		run:         2,
	})
	if err == nil {
		t.Fatal("invalid swarm: want error")
	}
	for _, want := range []string{"Figure 9/test-series", "bandwidth 128 kB/s", "run 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestFigureErrorNamesSeries: the attribution must survive all the way out
// of a figure function, for both serial and parallel pools, and be the
// same error either way (errors are selected by cell index, not completion
// order).
func TestFigureErrorNamesSeries(t *testing.T) {
	msgs := make([]string, 0, 2)
	for _, workers := range []int{1, 4} {
		p := testParams()
		p.Workers = workers
		p.Leechers = 0
		_, err := p.Fig2Stalls([]int64{128, 256})
		if err == nil {
			t.Fatalf("Workers=%d: invalid swarm: want error", workers)
		}
		if !strings.Contains(err.Error(), "Figure 2/gop") {
			t.Errorf("Workers=%d: error %q does not attribute the series", workers, err)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Errorf("error depends on pool size: serial %q vs parallel %q", msgs[0], msgs[1])
	}
}

// TestRunCellsWorkerBounds: degenerate pool shapes — no cells, one cell,
// more workers than cells — all complete and merge positionally.
func TestRunCellsWorkerBounds(t *testing.T) {
	p := testParams()
	segs, err := p.Segments(splicer.DurationSplicer{Target: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 16} {
		p.Workers = workers
		out, err := p.runCells(nil)
		if err != nil || len(out) != 0 {
			t.Fatalf("Workers=%d: empty cell list: %v, %d results", workers, err, len(out))
		}
		cells := []cell{{label: "bounds/one", segs: segs, bandwidthKB: 512, policy: core.AdaptivePool{}}}
		out, err = p.runCells(cells)
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if len(out) != 1 {
			t.Fatalf("Workers=%d: %d results for 1 cell", workers, len(out))
		}
	}
}

// TestEffectiveWorkers pins the override semantics the flag and the
// figure functions rely on.
func TestEffectiveWorkers(t *testing.T) {
	p := testParams()
	p.Workers = 0
	if got := p.effectiveWorkers(); got < 1 {
		t.Errorf("Workers=0 resolved to %d", got)
	}
	p.Workers = 3
	if got := p.effectiveWorkers(); got != 3 {
		t.Errorf("Workers=3 resolved to %d", got)
	}
	p.Workers = 1
	if got := p.effectiveWorkers(); got != 1 {
		t.Errorf("Workers=1 resolved to %d", got)
	}
}
