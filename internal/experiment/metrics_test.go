package experiment

import (
	"strings"
	"testing"

	"p2psplice/internal/trace"
)

// Params.Metrics must be observational only: the same figure, with and
// without a registry attached, produces float-bit-identical values —
// the experiment-level twin of simpeer's inertness proof.
func TestMetricsAreInert(t *testing.T) {
	bws := []int64{128, 512}

	bare := tracedParams()
	plain, err := bare.Fig2Stalls(bws)
	if err != nil {
		t.Fatal(err)
	}

	metered := tracedParams()
	reg := trace.NewRegistry()
	metered.Metrics = reg
	got, err := metered.Fig2Stalls(bws)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "Fig2Stalls with Metrics", plain.Values, got.Values)

	// The sweep populated the QoE histograms, with segment series labeled
	// by splicing scheme.
	snap := reg.Snap()
	byName := map[string]trace.HistStat{}
	for _, h := range snap.Hists {
		byName[h.Name] = h
	}
	if h := byName["sim_startup_seconds"]; h.Count == 0 {
		t.Error("no startup observations across the sweep")
	}
	if h := byName["sim_pool_size_k"]; h.Count == 0 {
		t.Error("no pool-size observations across the sweep")
	}
	schemes := map[string]bool{}
	for name := range byName {
		if strings.HasPrefix(name, "sim_segment_bytes{scheme=") {
			schemes[name] = true
		}
	}
	// Figure 2 sweeps four splicing series (gop + three fixed durations).
	if len(schemes) != 4 {
		t.Errorf("segment-bytes series = %v, want 4 schemes", schemes)
	}
}

// The shared registry accumulates identically whatever the worker count:
// histogram sums are exact integer additions, so parallel cell execution
// cannot perturb them.
func TestMetricsIdenticalAcrossWorkers(t *testing.T) {
	snapshots := make([]trace.RegistrySnapshot, 0, 2)
	for _, workers := range []int{1, 2} {
		p := tracedParams()
		p.Workers = workers
		reg := trace.NewRegistry()
		p.Metrics = reg
		if _, err := p.Fig2Stalls([]int64{128}); err != nil {
			t.Fatal(err)
		}
		snapshots = append(snapshots, reg.Snap())
	}
	a, b := snapshots[0], snapshots[1]
	if len(a.Hists) != len(b.Hists) {
		t.Fatalf("histogram families: %d serial vs %d parallel", len(a.Hists), len(b.Hists))
	}
	for i := range a.Hists {
		if a.Hists[i] != b.Hists[i] {
			t.Errorf("histogram %s differs across workers:\nserial:   %+v\nparallel: %+v",
				a.Hists[i].Name, a.Hists[i], b.Hists[i])
		}
	}
}

func TestSchemeFromLabel(t *testing.T) {
	cases := map[string]string{
		"Figure 2/gop":          "gop",
		"Figure 6/adaptive@256": "adaptive",
		"Churn/4s/low":          "4s",
		"sweep/2s":              "2s",
		"nolabel":               "",
	}
	for in, want := range cases {
		if got := schemeFromLabel(in); got != want {
			t.Errorf("schemeFromLabel(%q) = %q, want %q", in, got, want)
		}
	}
}
