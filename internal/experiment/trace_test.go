package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"p2psplice/internal/trace"
)

func tracedParams() Params {
	p := QuickParams()
	p.ClipDuration = 30 * time.Second
	p.Leechers = 4
	return p
}

// TraceDir must be observational only: the same figure, with and without
// artifact collection, produces float-bit-identical values.
func TestTraceDirInert(t *testing.T) {
	bws := []int64{128, 512}

	bare := tracedParams()
	plain, err := bare.Fig2Stalls(bws)
	if err != nil {
		t.Fatal(err)
	}

	traced := tracedParams()
	traced.TraceDir = t.TempDir()
	got, err := traced.Fig2Stalls(bws)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "Fig2Stalls with TraceDir", plain.Values, got.Values)

	// Four series × two bandwidths × one run, three artifacts per cell.
	for _, glob := range []string{"*.jsonl", "*.trace.json", "*.timeline.json"} {
		files, err := filepath.Glob(filepath.Join(traced.TraceDir, glob))
		if err != nil {
			t.Fatal(err)
		}
		if want := 4 * len(bws) * traced.Runs; len(files) != want {
			t.Errorf("%d %s artifacts, want %d", len(files), glob, want)
		}
	}
}

// readTimelines loads every stall-timeline artifact in dir.
func readTimelines(t *testing.T, dir string) map[string][]trace.PeerTimeline {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.timeline.json"))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]trace.PeerTimeline, len(files))
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var tls []trace.PeerTimeline
		if err := json.Unmarshal(raw, &tls); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out[filepath.Base(path)] = tls
	}
	return out
}

// A quick Figure 2 run must attribute 100% of the stalls it traces: every
// stall record in every timeline artifact names a cause.
func TestFigure2TraceAttribution(t *testing.T) {
	p := tracedParams()
	p.TraceDir = t.TempDir()
	// The low end of the bandwidth axis, where Figure 2 actually stalls.
	if _, err := p.Fig2Stalls([]int64{128}); err != nil {
		t.Fatal(err)
	}

	total := 0
	for name, tls := range readTimelines(t, p.TraceDir) {
		for _, tl := range tls {
			total += len(tl.Stalls)
		}
		if un := trace.Unattributed(tls); len(un) != 0 {
			t.Errorf("%s: %d unattributed stalls (first: %+v)", name, len(un), un[0])
		}
	}
	if total == 0 {
		t.Fatal("no stalls traced at 128 kB/s; attribution untested")
	}
}
