package experiment

import (
	"testing"
	"time"

	"p2psplice/internal/core"
	"p2psplice/internal/shaper"
	"p2psplice/internal/splicer"
)

func TestRealStackRunUnshaped(t *testing.T) {
	samples, err := RealStackRun(RealStackConfig{
		Clip:    4 * time.Second,
		Rate:    32 * 1024,
		Seed:    5,
		Viewers: 2,
		Timeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
	for _, s := range samples {
		if !s.Finished {
			t.Errorf("viewer %d unfinished", s.Peer)
		}
		if s.Startup <= 0 {
			t.Errorf("viewer %d startup %v", s.Peer, s.Startup)
		}
	}
}

func TestRealStackRunShaped(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time shaped transfer")
	}
	// Shaped to 256 kB/s: the 4s 32 kB/s clip (~140 kB + framing) must take
	// visibly longer to fetch than unshaped loopback, and startup reflects it.
	start := time.Now()
	samples, err := RealStackRun(RealStackConfig{
		Clip:    4 * time.Second,
		Rate:    32 * 1024,
		Seed:    5,
		Viewers: 1,
		Splicer: splicer.DurationSplicer{Target: 2 * time.Second},
		Policy:  core.AdaptivePool{},
		Shape:   &shaper.Config{RateBytesPerSec: 64 * 1024, Latency: 10 * time.Millisecond},
		Timeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// ~140 kB through a 64 kB/s shaper (charged on both sides) needs at
	// least ~1s of wall time even with the token-bucket burst.
	if elapsed < 500*time.Millisecond {
		t.Errorf("shaped run finished in %v; shaper apparently inactive", elapsed)
	}
	if samples[0].Startup < 100*time.Millisecond {
		t.Errorf("shaped startup %v implausibly fast", samples[0].Startup)
	}
}

func TestRealStackValidation(t *testing.T) {
	if _, err := RealStackRun(RealStackConfig{Clip: time.Second, Viewers: 0}); err == nil {
		t.Error("zero viewers: want error")
	}
	if _, err := RealStackRun(RealStackConfig{Clip: 0, Viewers: 1}); err == nil {
		t.Error("zero clip: want error")
	}
}
