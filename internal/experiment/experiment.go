// Package experiment regenerates the paper's evaluation: one function per
// figure (Figures 2-5), each sweeping the parameters Section V describes and
// rendering the same series the paper plots, plus the ablations DESIGN.md
// calls out. Absolute numbers are model-specific; the harness exists to
// reproduce the figures' shapes (who wins, by how much, where the crossovers
// fall).
package experiment

import (
	"time"

	"p2psplice/internal/core"
	"p2psplice/internal/media"
	"p2psplice/internal/metrics"
	"p2psplice/internal/simpeer"
	"p2psplice/internal/splicer"
	"p2psplice/internal/trace"
)

// Params holds the experiment-wide knobs. The zero value is not useful;
// start from DefaultParams (the paper's setup) or QuickParams (a scaled-down
// variant for tests).
type Params struct {
	// ClipDuration is the video length (paper: 2 minutes).
	ClipDuration time.Duration
	// Encoder configures the synthetic clip (paper: 1 Mbps MPEG-4).
	Encoder media.EncoderConfig
	// VideoSeed fixes the synthetic clip.
	VideoSeed int64
	// Leechers is the number of viewers (paper: 19, plus the seeder = 20).
	Leechers int
	// Runs is the number of repetitions per sweep point; results are the
	// rounded average, as in the paper.
	Runs int
	// BaseSeed seeds run r of a sweep point with BaseSeed + r.
	BaseSeed int64
	// LossPct is the access-link loss for the splicing/pooling sweeps
	// (paper: 5).
	LossPct float64
	// JoinSpread staggers viewer joins (viewers do not press play in the
	// same millisecond).
	JoinSpread time.Duration
	// ResumeBuffer is the player's rebuffering depth after a stall
	// (VLC-like players rebuffer a few seconds before resuming).
	ResumeBuffer time.Duration
	// Workers bounds the runner's worker pool: every (series × bandwidth ×
	// run) cell of a figure is an independent job. 0 means GOMAXPROCS;
	// 1 forces the serial path. Results are bit-identical either way
	// (each cell owns its seed; see runner.go).
	Workers int
	// TraceDir, when non-empty, attaches a tracer to every cell and writes
	// three artifacts per cell into the directory: <label>-bw<N>-run<R>
	// .jsonl (raw events), .trace.json (Chrome trace-event format), and
	// .timeline.json (per-peer stall timeline with attributed causes).
	// Tracing is observational only; figure values are bit-identical with
	// TraceDir set or empty (DESIGN.md §8).
	TraceDir string
	// Metrics, when non-nil, attaches this registry to every cell's swarm:
	// the QoE histograms (startup, per-cause stall durations, segment
	// latency/bytes labeled by splicing scheme, pool sizes) accumulate
	// across the whole sweep. Like TraceDir it is observational only;
	// figure values are bit-identical with it set or nil
	// (TestMetricsAreInert). The registry's atomic instruments make the
	// shared accumulation safe — and, because histogram totals are exact
	// integer sums, deterministic — under the parallel runner.
	Metrics *trace.Registry
	// Series, when non-nil, attaches this windowed time-series recorder
	// to every cell's swarm: per-window buffer occupancy, in-flight
	// flows, stalled peers, pool targets, and segment completions
	// accumulate across the sweep in virtual time. Observational only,
	// like Metrics: figure values are bit-identical with it set or nil
	// (TestTimeSeriesInert), and its commutative integer windows make the
	// shared accumulation deterministic under the parallel runner.
	Series *trace.TimeSeries
}

// DefaultParams mirrors the paper's Section V setup.
func DefaultParams() Params {
	return Params{
		ClipDuration: 2 * time.Minute,
		Encoder:      media.DefaultEncoderConfig(),
		VideoSeed:    42,
		Leechers:     19,
		Runs:         3,
		BaseSeed:     1000,
		LossPct:      5,
		JoinSpread:   5 * time.Second,
		ResumeBuffer: 6 * time.Second,
	}
}

// QuickParams is a scaled-down variant (shorter clip, fewer peers, one run)
// for tests and smoke benchmarks. The shapes survive the scaling.
func QuickParams() Params {
	p := DefaultParams()
	p.ClipDuration = 40 * time.Second
	p.Leechers = 6
	p.Runs = 1
	p.JoinSpread = 3 * time.Second
	return p
}

// Video returns the experiment clip, synthesizing it on first use and
// serving it from the process-wide cache afterwards (synthesis is a pure
// function of the encoder config, duration, and seed). The returned video
// is shared — treat it as read-only, as every splicer does.
func (p Params) Video() (*media.Video, error) {
	return globalClips.video(p.videoKey())
}

// Segments splices the experiment clip with sp and returns the swarm-level
// segment metadata, with wire sizes accounting for the container framing.
// Results are memoized process-wide by (encoder config, clip duration,
// video seed, splicer identity); each call returns a fresh copy of the
// cached slice, so callers never alias each other's state.
func (p Params) Segments(sp splicer.Splicer) ([]simpeer.SegmentMeta, error) {
	return globalClips.segments(segKey{video: p.videoKey(), splicerID: splicerIdentity(sp)}, sp)
}

// swarmConfig assembles the common swarm configuration.
func (p Params) swarmConfig(bandwidthKB int64, policy core.Policy, seed int64) simpeer.SwarmConfig {
	return simpeer.SwarmConfig{
		Seed:                 seed,
		Leechers:             p.Leechers,
		BandwidthBytesPerSec: bandwidthKB * 1024,
		PeerAccessDelay:      25 * time.Millisecond,
		SeederAccessDelay:    25 * time.Millisecond,
		LossRate:             p.LossPct / 100,
		Policy:               policy,
		OracleBandwidth:      true,
		JoinSpread:           p.JoinSpread,
		ResumeBuffer:         p.ResumeBuffer,
	}
}

// Point is one sweep measurement: the paper's three playback measures,
// averaged over leechers and runs.
type Point struct {
	BandwidthKB  int64
	Stalls       float64
	StallSeconds float64
	StartupSecs  float64
}

// runPoint executes Runs repetitions at one sweep point (on the worker
// pool when Runs > 1 and Workers allows) and averages. label attributes
// failures to the figure and series that scheduled the point.
func (p Params) runPoint(label string, segs []simpeer.SegmentMeta, bandwidthKB int64,
	policy core.Policy, mod func(*simpeer.SwarmConfig)) (Point, error) {
	cells := make([]cell, p.Runs)
	for r := 0; r < p.Runs; r++ {
		cells[r] = cell{label: label, segs: segs, bandwidthKB: bandwidthKB,
			policy: policy, mod: mod, run: r}
	}
	outs, err := p.runCells(cells)
	if err != nil {
		return Point{}, err
	}
	return averageCells(bandwidthKB, outs), nil
}

// Sweep runs one series over the bandwidth axis, fanning the (bandwidth ×
// run) cells out on the worker pool.
func (p Params) Sweep(sp splicer.Splicer, policy core.Policy, bandwidthsKB []int64,
	mod func(*simpeer.SwarmConfig)) ([]Point, error) {
	segs, err := p.Segments(sp)
	if err != nil {
		return nil, err
	}
	points, err := p.runSweeps([]sweepSpec{{
		name:       sp.Name(),
		label:      "sweep/" + sp.Name(),
		segs:       segs,
		policy:     policy,
		mod:        mod,
		bandwidths: bandwidthsKB,
	}})
	if err != nil {
		return nil, err
	}
	return points[0], nil
}

// FigureResult is a rendered figure plus its raw series for assertions.
type FigureResult struct {
	Figure metrics.Figure
	// Values maps series name to per-x numeric values.
	Values map[string][]float64
}

// Series returns the numeric series for name, or nil.
func (f *FigureResult) Series(name string) []float64 { return f.Values[name] }
