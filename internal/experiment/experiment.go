// Package experiment regenerates the paper's evaluation: one function per
// figure (Figures 2-5), each sweeping the parameters Section V describes and
// rendering the same series the paper plots, plus the ablations DESIGN.md
// calls out. Absolute numbers are model-specific; the harness exists to
// reproduce the figures' shapes (who wins, by how much, where the crossovers
// fall).
package experiment

import (
	"fmt"
	"time"

	"p2psplice/internal/container"
	"p2psplice/internal/core"
	"p2psplice/internal/media"
	"p2psplice/internal/metrics"
	"p2psplice/internal/simpeer"
	"p2psplice/internal/splicer"
)

// Params holds the experiment-wide knobs. The zero value is not useful;
// start from DefaultParams (the paper's setup) or QuickParams (a scaled-down
// variant for tests).
type Params struct {
	// ClipDuration is the video length (paper: 2 minutes).
	ClipDuration time.Duration
	// Encoder configures the synthetic clip (paper: 1 Mbps MPEG-4).
	Encoder media.EncoderConfig
	// VideoSeed fixes the synthetic clip.
	VideoSeed int64
	// Leechers is the number of viewers (paper: 19, plus the seeder = 20).
	Leechers int
	// Runs is the number of repetitions per sweep point; results are the
	// rounded average, as in the paper.
	Runs int
	// BaseSeed seeds run r of a sweep point with BaseSeed + r.
	BaseSeed int64
	// LossPct is the access-link loss for the splicing/pooling sweeps
	// (paper: 5).
	LossPct float64
	// JoinSpread staggers viewer joins (viewers do not press play in the
	// same millisecond).
	JoinSpread time.Duration
	// ResumeBuffer is the player's rebuffering depth after a stall
	// (VLC-like players rebuffer a few seconds before resuming).
	ResumeBuffer time.Duration
}

// DefaultParams mirrors the paper's Section V setup.
func DefaultParams() Params {
	return Params{
		ClipDuration: 2 * time.Minute,
		Encoder:      media.DefaultEncoderConfig(),
		VideoSeed:    42,
		Leechers:     19,
		Runs:         3,
		BaseSeed:     1000,
		LossPct:      5,
		JoinSpread:   5 * time.Second,
		ResumeBuffer: 6 * time.Second,
	}
}

// QuickParams is a scaled-down variant (shorter clip, fewer peers, one run)
// for tests and smoke benchmarks. The shapes survive the scaling.
func QuickParams() Params {
	p := DefaultParams()
	p.ClipDuration = 40 * time.Second
	p.Leechers = 6
	p.Runs = 1
	p.JoinSpread = 3 * time.Second
	return p
}

// Video synthesizes the experiment clip.
func (p Params) Video() (*media.Video, error) {
	return media.Synthesize(p.Encoder, p.ClipDuration, p.VideoSeed)
}

// Segments splices the experiment clip with sp and returns the swarm-level
// segment metadata, with wire sizes accounting for the container framing.
func (p Params) Segments(sp splicer.Splicer) ([]simpeer.SegmentMeta, error) {
	v, err := p.Video()
	if err != nil {
		return nil, err
	}
	segs, err := sp.Splice(v)
	if err != nil {
		return nil, err
	}
	out := make([]simpeer.SegmentMeta, len(segs))
	for i, s := range segs {
		out[i] = simpeer.SegmentMeta{
			Bytes:    container.WireSize(len(s.Frames), s.Bytes()),
			Duration: s.Duration(),
		}
	}
	return out, nil
}

// swarmConfig assembles the common swarm configuration.
func (p Params) swarmConfig(bandwidthKB int64, policy core.Policy, seed int64) simpeer.SwarmConfig {
	return simpeer.SwarmConfig{
		Seed:                 seed,
		Leechers:             p.Leechers,
		BandwidthBytesPerSec: bandwidthKB * 1024,
		PeerAccessDelay:      25 * time.Millisecond,
		SeederAccessDelay:    25 * time.Millisecond,
		LossRate:             p.LossPct / 100,
		Policy:               policy,
		OracleBandwidth:      true,
		JoinSpread:           p.JoinSpread,
		ResumeBuffer:         p.ResumeBuffer,
	}
}

// Point is one sweep measurement: the paper's three playback measures,
// averaged over leechers and runs.
type Point struct {
	BandwidthKB  int64
	Stalls       float64
	StallSeconds float64
	StartupSecs  float64
}

// runPoint executes Runs repetitions at one sweep point and averages.
func (p Params) runPoint(segs []simpeer.SegmentMeta, bandwidthKB int64, policy core.Policy,
	mod func(*simpeer.SwarmConfig)) (Point, error) {
	var stalls, stallSecs, startups []float64
	for r := 0; r < p.Runs; r++ {
		cfg := p.swarmConfig(bandwidthKB, policy, p.BaseSeed+int64(r))
		if mod != nil {
			mod(&cfg)
		}
		res, err := simpeer.RunSwarm(cfg, segs)
		if err != nil {
			return Point{}, fmt.Errorf("experiment: bandwidth %d kB/s: %w", bandwidthKB, err)
		}
		sum := res.Summary()
		stalls = append(stalls, sum.MeanStalls)
		stallSecs = append(stallSecs, sum.MeanStallSeconds)
		startups = append(startups, sum.MeanStartupSeconds)
	}
	return Point{
		BandwidthKB:  bandwidthKB,
		Stalls:       metrics.Mean(stalls),
		StallSeconds: metrics.Mean(stallSecs),
		StartupSecs:  metrics.Mean(startups),
	}, nil
}

// Sweep runs one series over the bandwidth axis.
func (p Params) Sweep(sp splicer.Splicer, policy core.Policy, bandwidthsKB []int64,
	mod func(*simpeer.SwarmConfig)) ([]Point, error) {
	segs, err := p.Segments(sp)
	if err != nil {
		return nil, err
	}
	points := make([]Point, 0, len(bandwidthsKB))
	for _, bw := range bandwidthsKB {
		pt, err := p.runPoint(segs, bw, policy, mod)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	return points, nil
}

// FigureResult is a rendered figure plus its raw series for assertions.
type FigureResult struct {
	Figure metrics.Figure
	// Values maps series name to per-x numeric values.
	Values map[string][]float64
}

// Series returns the numeric series for name, or nil.
func (f *FigureResult) Series(name string) []float64 { return f.Values[name] }
