package experiment

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"p2psplice/internal/container"
	"p2psplice/internal/media"
	"p2psplice/internal/simpeer"
	"p2psplice/internal/splicer"
)

// freshSegments computes segment metadata the pre-cache way: synthesize,
// splice, convert — no shared state anywhere.
func freshSegments(t testing.TB, p Params, sp splicer.Splicer) []simpeer.SegmentMeta {
	t.Helper()
	v, err := media.Synthesize(p.Encoder, p.ClipDuration, p.VideoSeed)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := sp.Splice(v)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]simpeer.SegmentMeta, len(segs))
	for i, s := range segs {
		out[i] = simpeer.SegmentMeta{
			Bytes:    container.WireSize(len(s.Frames), s.Bytes()),
			Duration: s.Duration(),
		}
	}
	return out
}

// TestSegmentsCacheMatchesFreshSynthesis is the cache-correctness property
// test: for random encoder configs, seeds, and splicer targets, the cached
// Segments result is deep-equal to an uncached synthesis of the same
// inputs — called twice, so both the cold (fill) and warm (hit) paths are
// compared.
func TestSegmentsCacheMatchesFreshSynthesis(t *testing.T) {
	check := func(fpsRaw, targetRaw uint8, rateRaw uint16, seed int64) bool {
		p := QuickParams()
		p.ClipDuration = 4 * time.Second
		p.Encoder.FPS = 10 + int(fpsRaw%21)                         // 10..30
		p.Encoder.BytesPerSecond = 16_000 + int64(rateRaw%16)*8_000 // 16k..136k
		p.VideoSeed = seed
		sp := splicer.DurationSplicer{Target: time.Duration(1+targetRaw%4) * time.Second}

		want := freshSegments(t, p, sp)
		for round := 0; round < 2; round++ {
			got, err := p.Segments(sp)
			if err != nil {
				t.Logf("Segments: %v", err)
				return false
			}
			if !reflect.DeepEqual(got, want) {
				t.Logf("round %d: cached result diverges from fresh synthesis (fps=%d rate=%d seed=%d target=%v)",
					round, p.Encoder.FPS, p.Encoder.BytesPerSecond, seed, sp.Target)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 25,
		Rand:     rand.New(rand.NewSource(1)),
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentsCacheDoesNotCacheErrors: a failing config must fail every
// time with the same error, and must not poison a later valid lookup that
// shares nothing with it.
func TestSegmentsCacheErrorsAreStable(t *testing.T) {
	p := QuickParams()
	p.Encoder.FPS = 0
	sp := splicer.GOPSplicer{}
	_, err1 := p.Segments(sp)
	_, err2 := p.Segments(sp)
	if err1 == nil || err2 == nil {
		t.Fatalf("invalid encoder: want errors, got %v / %v", err1, err2)
	}
	if err1.Error() != err2.Error() {
		t.Errorf("error changed between lookups: %q vs %q", err1, err2)
	}
	if _, err := QuickParams().Segments(sp); err != nil {
		t.Errorf("valid lookup after failed one: %v", err)
	}
}

// TestSegmentsCacheNoAliasing mutates one caller's returned slice and
// checks the cache still serves the pristine values: callers must never
// share backing arrays.
func TestSegmentsCacheNoAliasing(t *testing.T) {
	p := QuickParams()
	sp := splicer.DurationSplicer{Target: 4 * time.Second}
	a, err := p.Segments(sp)
	if err != nil {
		t.Fatal(err)
	}
	pristine := make([]simpeer.SegmentMeta, len(a))
	copy(pristine, a)
	for i := range a {
		a[i].Bytes = -1
		a[i].Duration = -1
	}
	b, err := p.Segments(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, pristine) {
		t.Fatal("mutating one caller's slice corrupted the cache")
	}
}

// TestSegmentsCacheConcurrentStress hammers the same cold key (and a few
// distinct ones) from many goroutines while every caller scribbles over
// its own returned slice. Run under -race, this is the "cache never
// aliases mutable state across concurrent callers" check; the final
// lookups verify values survived the abuse.
func TestSegmentsCacheConcurrentStress(t *testing.T) {
	p := QuickParams()
	p.ClipDuration = 6 * time.Second
	p.VideoSeed = 314159 // a key no other test warms
	targets := []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second}

	wants := make([][]simpeer.SegmentMeta, len(targets))
	for i, target := range targets {
		wants[i] = freshSegments(t, p, splicer.DurationSplicer{Target: target})
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 8; round++ {
				target := targets[(g+round)%len(targets)]
				segs, err := p.Segments(splicer.DurationSplicer{Target: target})
				if err != nil {
					errs[g] = err
					return
				}
				// Scribble: if any two callers alias, -race flags this.
				for i := range segs {
					segs[i].Bytes = int64(g)
					segs[i].Duration = time.Duration(round)
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for i, target := range targets {
		got, err := p.Segments(splicer.DurationSplicer{Target: target})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, wants[i]) {
			t.Fatalf("target %v: cache corrupted by concurrent scribbling", target)
		}
	}
}

// TestVideoCacheReturnsSameClip: the memoized video is the same synthesis
// a direct call produces, and repeated lookups are cheap identity hits.
func TestVideoCacheReturnsSameClip(t *testing.T) {
	p := QuickParams()
	p.VideoSeed = 271828
	direct, err := media.Synthesize(p.Encoder, p.ClipDuration, p.VideoSeed)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := p.Video()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := p.Video()
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Error("repeated Video() lookups returned different instances")
	}
	if !reflect.DeepEqual(v1.Frames(), direct.Frames()) {
		t.Error("cached video differs from direct synthesis")
	}
}
