package experiment

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"p2psplice/internal/core"
	"p2psplice/internal/metrics"
	"p2psplice/internal/simpeer"
	"p2psplice/internal/trace"
)

// This file is the parallel experiment runner. Every figure decomposes into
// independent cells — one emulated swarm per (series × bandwidth × run) —
// and each cell already owns everything that determines its result: the
// spliced segment list, the swarm config, and its seed (BaseSeed + run).
// Cells therefore run on a bounded worker pool in any order and merge back
// positionally, which keeps the output bit-identical to the serial path
// (DESIGN.md §7; the equivalence and golden tests in this package enforce
// it).

// cell is one independent simulation unit: a single (series × bandwidth ×
// run) point of a figure sweep.
type cell struct {
	// label attributes failures inside a parallel fan-out ("Figure 2/gop").
	label       string
	segs        []simpeer.SegmentMeta
	bandwidthKB int64
	policy      core.Policy
	mod         func(*simpeer.SwarmConfig)
	// run indexes the repetition; the cell's swarm runs with seed
	// BaseSeed + run.
	run int
}

// cellOut is one cell's summary metrics.
type cellOut struct {
	stalls      float64
	stallSecs   float64
	startupSecs float64
}

// schemeFromLabel extracts the splicing-scheme series name from a cell
// label for the segment-histogram label: "Figure 2/gop" → "gop",
// "Figure 6/adaptive@256" → "adaptive", "Churn/4s/low" → "4s".
func schemeFromLabel(label string) string {
	parts := strings.Split(label, "/")
	if len(parts) < 2 {
		return ""
	}
	scheme := parts[1]
	if i := strings.IndexByte(scheme, '@'); i >= 0 {
		scheme = scheme[:i]
	}
	return scheme
}

// runCell executes one emulated swarm, writing trace artifacts when
// Params.TraceDir is set.
func (p Params) runCell(c cell) (cellOut, error) {
	cfg := p.swarmConfig(c.bandwidthKB, c.policy, p.BaseSeed+int64(c.run))
	if c.mod != nil {
		c.mod(&cfg)
	}
	if p.Metrics != nil {
		cfg.Metrics = p.Metrics
		cfg.MetricsScheme = schemeFromLabel(c.label)
	}
	// The shared TimeSeries accumulates across every cell; its atomic
	// commutative windows keep the aggregate deterministic under the
	// parallel runner (TestTimeSeriesIdenticalAcrossWorkers).
	cfg.Series = p.Series
	var buf *trace.Buffer
	if p.TraceDir != "" {
		buf = trace.NewBuffer()
		cfg.Tracer = trace.New(buf)
	}
	res, err := simpeer.RunSwarm(cfg, c.segs)
	if err != nil {
		return cellOut{}, fmt.Errorf("experiment: %s: bandwidth %d kB/s (run %d): %w",
			c.label, c.bandwidthKB, c.run, err)
	}
	if buf != nil {
		if err := writeCellTrace(p.TraceDir, c, buf.Events()); err != nil {
			return cellOut{}, err
		}
	}
	sum := res.Summary()
	return cellOut{
		stalls:      sum.MeanStalls,
		stallSecs:   sum.MeanStallSeconds,
		startupSecs: sum.MeanStartupSeconds,
	}, nil
}

// effectiveWorkers resolves the pool size: Params.Workers when positive,
// otherwise GOMAXPROCS.
func (p Params) effectiveWorkers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runCells executes every cell on a bounded worker pool and returns results
// in cell order. Workers=1 (or a single cell) takes a plain serial loop.
// Errors are selected by cell index, not completion order, so the reported
// failure is the same whichever worker hits it first.
func (p Params) runCells(cells []cell) ([]cellOut, error) {
	out := make([]cellOut, len(cells))
	workers := p.effectiveWorkers()
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for i, c := range cells {
			o, err := p.runCell(c)
			if err != nil {
				return nil, err
			}
			out[i] = o
		}
		return out, nil
	}
	errs := make([]error, len(cells))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				out[i], errs[i] = p.runCell(cells[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sweepSpec describes one figure series: a prepared segment list swept over
// a bandwidth axis under one policy.
type sweepSpec struct {
	// name keys the series in FigureResult.Values.
	name string
	// label attributes cell failures ("Figure 4/2s segment").
	label      string
	segs       []simpeer.SegmentMeta
	policy     core.Policy
	mod        func(*simpeer.SwarmConfig)
	bandwidths []int64
}

// runSweeps fans every (series × bandwidth × run) cell of specs out on the
// worker pool and merges the results back positionally: points[i][j] is
// spec i at bandwidth j, averaged over Runs exactly as the serial runner
// averaged (same accumulation order, so the floats are bit-identical).
func (p Params) runSweeps(specs []sweepSpec) ([][]Point, error) {
	var cells []cell
	for _, s := range specs {
		for _, bw := range s.bandwidths {
			for r := 0; r < p.Runs; r++ {
				cells = append(cells, cell{
					label:       s.label,
					segs:        s.segs,
					bandwidthKB: bw,
					policy:      s.policy,
					mod:         s.mod,
					run:         r,
				})
			}
		}
	}
	outs, err := p.runCells(cells)
	if err != nil {
		return nil, err
	}
	points := make([][]Point, len(specs))
	k := 0
	for i, s := range specs {
		points[i] = make([]Point, len(s.bandwidths))
		for j, bw := range s.bandwidths {
			points[i][j] = averageCells(bw, outs[k:k+p.Runs])
			k += p.Runs
		}
	}
	return points, nil
}

// averageCells folds one point's repetitions into the figure measurement,
// with the same per-metric accumulation the serial runner used.
func averageCells(bandwidthKB int64, outs []cellOut) Point {
	stalls := make([]float64, len(outs))
	stallSecs := make([]float64, len(outs))
	startups := make([]float64, len(outs))
	for i, o := range outs {
		stalls[i] = o.stalls
		stallSecs[i] = o.stallSecs
		startups[i] = o.startupSecs
	}
	return Point{
		BandwidthKB:  bandwidthKB,
		Stalls:       metrics.Mean(stalls),
		StallSeconds: metrics.Mean(stallSecs),
		StartupSecs:  metrics.Mean(startups),
	}
}
