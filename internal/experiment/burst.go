package experiment

import (
	"fmt"
	"time"

	"p2psplice/internal/core"
	"p2psplice/internal/fault"
	"p2psplice/internal/metrics"
	"p2psplice/internal/simpeer"
	"p2psplice/internal/splicer"
)

// BurstLevel is one x-axis point of the burst figure: an impairment mix
// applied at a fixed average loss rate.
type BurstLevel struct {
	Name string
	// GE, when non-nil, replaces i.i.d. loss with a Gilbert–Elliott
	// burst model on every node for the whole run.
	GE *fault.GEModel
	// CorruptPct additionally opens a segment-corruption window at that
	// discard percentage on every leecher.
	CorruptPct float64
}

// burstGE is the default burst model: stationary bad fraction
// p13/(p13+p31) = 1/7, so the long-run average loss rate is
// 0.005·6/7 + 0.32·1/7 ≈ 5.0% — the same mean as the baseline i.i.d.
// 5%, concentrated into ~1.7 s bursts roughly every 10 s.
var burstGE = fault.GEModel{PGood: 0.005, PBad: 0.32, P13: 0.1, P31: 0.6}

// BurstLevels returns the default impairment axis. The first level is
// the paper's i.i.d. 5% loss; the others hold the average loss rate at
// 5% while correlating it, which is what real access links do.
func BurstLevels() []BurstLevel {
	ge := burstGE
	return []BurstLevel{
		{Name: "iid", GE: nil},
		{Name: "burst", GE: &ge},
		{Name: "burst+corrupt", GE: &ge, CorruptPct: 10},
	}
}

// burstBandwidthKB fixes the access bandwidth for the burst sweep: the
// axis under study is loss correlation, not bandwidth.
const burstBandwidthKB = 256

// burstMod returns the per-cell config hook for one impairment level.
// It runs after the cell's seed is set; the GE chains then draw their
// sojourn times from the run's own engine RNG and the corruption draws
// from pure hashes of the run's seed, so every cell stays
// bit-reproducible and byte-identical across -workers values.
func (p Params) burstMod(lv BurstLevel) func(*simpeer.SwarmConfig) {
	return func(cfg *simpeer.SwarmConfig) {
		if lv.GE == nil {
			return
		}
		// The GE model shadows the per-node i.i.d. loss while installed;
		// setting the baseline to the good-state rate keeps the brief
		// pre/post-window edges consistent with the good state.
		cfg.LossRate = lv.GE.PGood
		horizon := 2*p.ClipDuration + 30*time.Second
		plans := make([]fault.Plan, 0, 2*cfg.Leechers+1)
		for node := 0; node <= cfg.Leechers; node++ {
			plans = append(plans, fault.BurstLoss(node, 0, horizon, *lv.GE))
		}
		if lv.CorruptPct > 0 {
			for node := 1; node <= cfg.Leechers; node++ {
				plans = append(plans, fault.Corruption(node, 0, horizon, lv.CorruptPct))
			}
		}
		cfg.Faults = fault.Merge(plans...)
	}
}

// FigBurst runs the correlated-impairment experiment: GOP versus 4 s
// duration splicing, each under adaptive and fixed-4 pooling, as the
// same 5% average loss rate is progressively correlated (bursts) and
// compounded with segment corruption, at a fixed 256 kB/s. The measure
// is combined badness — startup time plus total stall seconds. Not one
// of the paper's figures; it probes whether the scheme ranking measured
// under i.i.d. loss survives the correlated loss of real access links.
func (p Params) FigBurst(levels []BurstLevel) (*FigureResult, error) {
	if len(levels) == 0 {
		levels = BurstLevels()
	}
	series := []struct {
		name string
		sp   splicer.Splicer
		pol  core.Policy
	}{
		{"gop adaptive", splicer.GOPSplicer{}, core.AdaptivePool{}},
		{"gop fixed-4", splicer.GOPSplicer{}, core.FixedPool{K: 4}},
		{"4s adaptive", splicer.DurationSplicer{Target: 4 * time.Second}, core.AdaptivePool{}},
		{"4s fixed-4", splicer.DurationSplicer{Target: 4 * time.Second}, core.FixedPool{K: 4}},
	}
	names := make([]string, len(levels))
	for i, lv := range levels {
		names[i] = lv.Name
	}
	fig := metrics.Figure{
		Title:   "Burst: startup + stall seconds as 5% average loss correlates (256 kB/s)",
		XLabel:  "Impairment",
		XValues: names,
	}

	var cells []cell
	for _, s := range series {
		segs, err := p.Segments(s.sp)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.sp.Name(), err)
		}
		for _, lv := range levels {
			mod := p.burstMod(lv)
			for r := 0; r < p.Runs; r++ {
				cells = append(cells, cell{
					label:       "Burst/" + s.name + "/" + lv.Name,
					segs:        segs,
					bandwidthKB: burstBandwidthKB,
					policy:      s.pol,
					mod:         mod,
					run:         r,
				})
			}
		}
	}
	outs, err := p.runCells(cells)
	if err != nil {
		return nil, err
	}
	res := &FigureResult{Values: make(map[string][]float64)}
	k := 0
	for _, s := range series {
		nums := make([]float64, len(levels))
		strs := make([]string, len(levels))
		for j := range levels {
			pt := averageCells(burstBandwidthKB, outs[k:k+p.Runs])
			k += p.Runs
			nums[j] = pt.StartupSecs + pt.StallSeconds
			strs[j] = metrics.FormatSeconds(nums[j])
		}
		res.Values[s.name] = nums
		fig.AddSeries(s.name, strs)
	}
	res.Figure = fig
	return res, nil
}
