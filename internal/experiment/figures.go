package experiment

import (
	"fmt"
	"strconv"
	"time"

	"p2psplice/internal/core"
	"p2psplice/internal/metrics"
	"p2psplice/internal/simpeer"
	"p2psplice/internal/splicer"
)

// Default sweep axes, matching the bandwidths the paper's figures label.
var (
	// Fig2Bandwidths covers the splicing sweeps (Figures 2 and 3).
	Fig2Bandwidths = []int64{128, 256, 512, 768, 1024}
	// Fig4Bandwidths matches Figure 4's axis labels.
	Fig4Bandwidths = []int64{128, 256, 512, 1024}
	// Fig5Bandwidths matches Figure 5's axis labels.
	Fig5Bandwidths = []int64{128, 256, 512, 768}
)

// SplicingSet returns the paper's four splicing configurations.
func SplicingSet() []splicer.Splicer {
	return []splicer.Splicer{
		splicer.GOPSplicer{},
		splicer.DurationSplicer{Target: 2 * time.Second},
		splicer.DurationSplicer{Target: 4 * time.Second},
		splicer.DurationSplicer{Target: 8 * time.Second},
	}
}

func bandwidthLabels(bws []int64) []string {
	out := make([]string, len(bws))
	for i, b := range bws {
		out[i] = strconv.FormatInt(b, 10)
	}
	return out
}

// splicingSweep runs Figures 2 and 3's sweep once and extracts the chosen
// measure from each point. All four series fan out together on the worker
// pool; figName attributes any cell failure ("Figure 2/gop").
func (p Params) splicingSweep(bandwidths []int64, measure func(Point) float64,
	format func(float64) string, figName, title string) (*FigureResult, error) {
	fig := metrics.Figure{
		Title:   title,
		XLabel:  "Available Bandwidth (kB/s)",
		XValues: bandwidthLabels(bandwidths),
	}
	specs := make([]sweepSpec, 0, 4)
	for _, sp := range SplicingSet() {
		segs, err := p.Segments(sp)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sp.Name(), err)
		}
		name := sp.Name()
		if sp.Kind() == splicer.KindGOP {
			name = "gop"
		}
		specs = append(specs, sweepSpec{
			name:       name,
			label:      figName + "/" + name,
			segs:       segs,
			policy:     core.AdaptivePool{},
			bandwidths: bandwidths,
		})
	}
	points, err := p.runSweeps(specs)
	if err != nil {
		return nil, err
	}
	res := &FigureResult{Values: make(map[string][]float64)}
	for i, spec := range specs {
		nums := make([]float64, len(points[i]))
		cells := make([]string, len(points[i]))
		for j, pt := range points[i] {
			nums[j] = measure(pt)
			cells[j] = format(nums[j])
		}
		res.Values[spec.name] = nums
		fig.AddSeries(spec.name, cells)
	}
	res.Figure = fig
	return res, nil
}

// Fig2Stalls reproduces Figure 2: total number of stalls for GOP and 2/4/8 s
// duration splicing across the bandwidth sweep (50 ms peer latency, 5% loss,
// adaptive pooling, sequential viewing).
func (p Params) Fig2Stalls(bandwidths []int64) (*FigureResult, error) {
	if len(bandwidths) == 0 {
		bandwidths = Fig2Bandwidths
	}
	return p.splicingSweep(bandwidths,
		func(pt Point) float64 { return pt.Stalls },
		func(v float64) string { return strconv.Itoa(int(v + 0.5)) },
		"Figure 2",
		"Figure 2: Total number of stalls for different bandwidths")
}

// Fig3StallDuration reproduces Figure 3: total stall duration (seconds) for
// the same sweep as Figure 2.
func (p Params) Fig3StallDuration(bandwidths []int64) (*FigureResult, error) {
	if len(bandwidths) == 0 {
		bandwidths = Fig2Bandwidths
	}
	return p.splicingSweep(bandwidths,
		func(pt Point) float64 { return pt.StallSeconds },
		metrics.FormatSeconds,
		"Figure 3",
		"Figure 3: Total stall duration for different bandwidths")
}

// Fig4Startup reproduces Figure 4: startup time for 2/4/8 s segments with
// the seeder 500 ms away (475 ms access delay). The paper specifies 5% loss
// only for the Figure 2/3 sweep; with a 1 s seeder RTT a loss-capped TCP
// model would pin startup at the Mathis bound and erase the bandwidth axis,
// so this experiment runs loss-free (see EXPERIMENTS.md).
func (p Params) Fig4Startup(bandwidths []int64) (*FigureResult, error) {
	if len(bandwidths) == 0 {
		bandwidths = Fig4Bandwidths
	}
	fig := metrics.Figure{
		Title:   "Figure 4: Startup time for different bandwidths",
		XLabel:  "Available Bandwidth (kB/s)",
		XValues: bandwidthLabels(bandwidths),
	}
	specs := make([]sweepSpec, 0, 3)
	for _, target := range []time.Duration{2 * time.Second, 4 * time.Second, 8 * time.Second} {
		sp := splicer.DurationSplicer{Target: target}
		segs, err := p.Segments(sp)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sp.Name(), err)
		}
		specs = append(specs, sweepSpec{
			name:   sp.Name(),
			label:  "Figure 4/" + sp.Name(),
			segs:   segs,
			policy: core.AdaptivePool{},
			mod: func(cfg *simpeer.SwarmConfig) {
				cfg.SeederAccessDelay = 475 * time.Millisecond
				cfg.LossRate = 0
			},
			bandwidths: bandwidths,
		})
	}
	points, err := p.runSweeps(specs)
	if err != nil {
		return nil, err
	}
	res := &FigureResult{Values: make(map[string][]float64)}
	for i, spec := range specs {
		nums := make([]float64, len(points[i]))
		cells := make([]string, len(points[i]))
		for j, pt := range points[i] {
			nums[j] = pt.StartupSecs
			cells[j] = metrics.FormatSeconds(nums[j])
		}
		res.Values[spec.name] = nums
		fig.AddSeries(spec.name+" segment", cells)
	}
	res.Figure = fig
	return res, nil
}

// PolicySet returns Figure 5's download policies.
func PolicySet() []core.Policy {
	return []core.Policy{
		core.AdaptivePool{},
		core.FixedPool{K: 2},
		core.FixedPool{K: 4},
		core.FixedPool{K: 8},
	}
}

// Fig5Pooling reproduces Figure 5: total number of stalls for adaptive
// pooling versus fixed pool sizes of 2, 4 and 8, on 4-second segments.
func (p Params) Fig5Pooling(bandwidths []int64) (*FigureResult, error) {
	if len(bandwidths) == 0 {
		bandwidths = Fig5Bandwidths
	}
	segs, err := p.Segments(splicer.DurationSplicer{Target: 4 * time.Second})
	if err != nil {
		return nil, err
	}
	fig := metrics.Figure{
		Title:   "Figure 5: Total number of stalls for different pool sizes",
		XLabel:  "Available Bandwidth (kB/s)",
		XValues: bandwidthLabels(bandwidths),
	}
	policies := PolicySet()
	specs := make([]sweepSpec, 0, len(policies))
	for _, pol := range policies {
		specs = append(specs, sweepSpec{
			name:       pol.Name(),
			label:      "Figure 5/" + pol.Name(),
			segs:       segs,
			policy:     pol,
			bandwidths: bandwidths,
		})
	}
	points, err := p.runSweeps(specs)
	if err != nil {
		return nil, err
	}
	res := &FigureResult{Values: make(map[string][]float64)}
	for i, spec := range specs {
		nums := make([]float64, len(points[i]))
		cells := make([]string, len(points[i]))
		for j, pt := range points[i] {
			nums[j] = pt.Stalls
			cells[j] = strconv.Itoa(int(nums[j] + 0.5))
		}
		name := spec.name
		if name == "adaptive" {
			name = "adaptive pooling"
		}
		res.Values[spec.name] = nums
		fig.AddSeries(name, cells)
	}
	res.Figure = fig
	return res, nil
}

// SpliceOverheadTable summarizes Section II's byte-overhead comparison: per
// technique, segment counts, total bytes, overhead ratio and size spread.
// (The paper discusses this in prose; the table makes it concrete.)
func (p Params) SpliceOverheadTable() (*FigureResult, error) {
	v, err := p.Video()
	if err != nil {
		return nil, err
	}
	fig := metrics.Figure{
		Title:   "Section II: splicing technique comparison",
		XLabel:  "technique",
		XValues: []string{},
	}
	counts := []string{}
	totals := []string{}
	overheads := []string{}
	spreads := []string{}
	minDurs := []string{}
	maxDurs := []string{}
	res := &FigureResult{Values: make(map[string][]float64)}
	for _, sp := range SplicingSet() {
		segs, err := sp.Splice(v)
		if err != nil {
			return nil, err
		}
		st := splicer.ComputeStats(segs)
		fig.XValues = append(fig.XValues, sp.Name())
		counts = append(counts, strconv.Itoa(st.Count))
		totals = append(totals, strconv.FormatInt(st.TotalBytes/1024, 10))
		overheads = append(overheads, fmt.Sprintf("%.1f%%", 100*st.OverheadRatio()))
		spreads = append(spreads, fmt.Sprintf("%.1fx", float64(st.MaxBytes)/float64(st.MinBytes)))
		minDurs = append(minDurs, fmt.Sprintf("%.2fs", st.MinDuration.Seconds()))
		maxDurs = append(maxDurs, fmt.Sprintf("%.2fs", st.MaxDuration.Seconds()))
		res.Values[sp.Name()] = []float64{100 * st.OverheadRatio()}
	}
	fig.AddSeries("segments", counts)
	fig.AddSeries("total kB", totals)
	fig.AddSeries("overhead", overheads)
	fig.AddSeries("max/min size", spreads)
	fig.AddSeries("min dur", minDurs)
	fig.AddSeries("max dur", maxDurs)
	res.Figure = fig
	return res, nil
}
