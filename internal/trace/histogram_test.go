package trace

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, // bucket 0: v <= 1
		{2, 1},         // (1, 2]
		{3, 2}, {4, 2}, // (2, 4]
		{5, 3}, {8, 3}, // (4, 8]
		{9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21},
		{1 << 47, 47},                // last finite bucket
		{1<<47 + 1, HistBuckets},     // first overflow value
		{math.MaxInt64, HistBuckets}, // deep overflow
	}
	for _, c := range cases {
		if got := histBucketIndex(c.v); got != c.want {
			t.Errorf("histBucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every finite bucket's upper bound must land in that bucket and
	// upper+1 in the next.
	for i := 0; i < HistBuckets; i++ {
		up := HistBucketUpper(i)
		if got := histBucketIndex(up); got != i {
			t.Errorf("upper bound %d landed in bucket %d, want %d", up, got, i)
		}
		wantNext := i + 1
		if wantNext > HistBuckets {
			wantNext = HistBuckets
		}
		if got := histBucketIndex(up + 1); got != wantNext {
			t.Errorf("upper bound %d+1 landed in bucket %d, want %d", up, got, wantNext)
		}
	}
}

func TestHistogramCountSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bytes")
	for _, v := range []int64{1, 2, 3, 100, 4096} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 4202 {
		t.Fatalf("Sum = %d, want 4202", h.Sum())
	}
	// Same name returns the same underlying histogram.
	h2 := r.Histogram("bytes")
	h2.Observe(10)
	if h.Count() != 6 {
		t.Fatalf("shared state: Count = %d, want 6", h.Count())
	}
}

func TestSecondsHistogramScale(t *testing.T) {
	r := NewRegistry()
	h := r.SecondsHistogram("lat_seconds")
	h.ObserveDuration(1500 * time.Millisecond) // 1.5e6 µs
	snap := r.Snap()
	if len(snap.Hists) != 1 {
		t.Fatalf("Hists = %d, want 1", len(snap.Hists))
	}
	hs := snap.Hists[0]
	if hs.Sum != 1_500_000 {
		t.Fatalf("raw Sum = %d, want 1500000", hs.Sum)
	}
	if got := hs.SumScaled(); got != 1.5 {
		t.Fatalf("SumScaled = %v, want 1.5", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q")
	// 100 observations of value 3 — all in bucket (2,4].
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	hs := r.Snap().Hists[0]
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := hs.Quantile(q)
		if got <= 2 || got > 4 {
			t.Errorf("Quantile(%v) = %v, want within (2, 4]", q, got)
		}
	}
	// Median of 50×1 and 50×1024 must land at or below the low bucket for
	// q=0.5 and in the high bucket for q=0.95.
	r2 := NewRegistry()
	h2 := r2.Histogram("q2")
	for i := 0; i < 50; i++ {
		h2.Observe(1)
		h2.Observe(1024)
	}
	hs2 := r2.Snap().Hists[0]
	if got := hs2.Quantile(0.5); got > 1 {
		t.Errorf("bimodal Quantile(0.5) = %v, want <= 1", got)
	}
	if got := hs2.Quantile(0.95); got <= 512 || got > 1024 {
		t.Errorf("bimodal Quantile(0.95) = %v, want within (512, 1024]", got)
	}
	// Empty histogram.
	var empty HistStat
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	// Overflow-only histogram reports the last finite bound.
	r3 := NewRegistry()
	r3.Histogram("q3").Observe(math.MaxInt64)
	hs3 := r3.Snap().Hists[0]
	if got, want := hs3.Quantile(0.5), float64(HistBucketUpper(HistBuckets-1)); got != want {
		t.Errorf("overflow Quantile = %v, want %v", got, want)
	}
}

func TestHistogramQuantileDeterministic(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 7 % 4096)
	}
	hs := r.Snap().Hists[0]
	first := hs.Quantile(0.95)
	for i := 0; i < 10; i++ {
		if got := hs.Quantile(0.95); math.Float64bits(got) != math.Float64bits(first) {
			t.Fatalf("Quantile not bit-stable: %v vs %v", got, first)
		}
	}
}

func TestHistogramConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := r.Histogram("conc") // concurrent lookup too
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	hs := r.Snap().Hists[0]
	if hs.Count != goroutines*perG {
		t.Fatalf("Count = %d, want %d", hs.Count, goroutines*perG)
	}
	want := int64(goroutines*perG) * int64(goroutines*perG-1) / 2 // sum 0..N-1
	if hs.Sum != want {
		t.Fatalf("Sum = %d, want %d (atomic adds must not lose updates)", hs.Sum, want)
	}
	var bucketTotal int64
	for _, c := range hs.Counts {
		bucketTotal += c
	}
	if bucketTotal != hs.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, hs.Count)
	}
}

func TestNilRegistryHistogramIsNoOp(t *testing.T) {
	var r *Registry
	h := r.Histogram("x")
	h.Observe(5)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil-registry histogram recorded: count=%d sum=%d", h.Count(), h.Sum())
	}
	sh := r.SecondsHistogram("y")
	sh.ObserveDuration(time.Second)
	if sh.Count() != 0 {
		t.Fatal("nil-registry seconds histogram recorded")
	}
	r.SetHelp("x", "help")
	snap := r.Snap()
	if len(snap.Stats) != 0 || len(snap.Hists) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry WriteText: err=%v len=%d", err, buf.Len())
	}
	if err := r.WriteProm(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry WriteProm: err=%v len=%d", err, buf.Len())
	}
}

// TestSnapshotOrderingContract pins the satellite-1 contract: Snapshot
// and WriteText order stats by name regardless of registration order,
// and repeated renders are byte-identical.
func TestSnapshotOrderingContract(t *testing.T) {
	build := func(order []int) *Registry {
		r := NewRegistry()
		names := []string{"zeta", "alpha", "mid"}
		for _, i := range order {
			switch names[i] {
			case "zeta":
				r.Counter("zeta").Add(1)
			case "alpha":
				r.Gauge("alpha").Set(2)
			case "mid":
				r.Histogram("mid").Observe(3)
			}
		}
		return r
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 1, 0})
	render := func(r *Registry) (string, string) {
		var txt, prom bytes.Buffer
		if err := r.WriteText(&txt); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteProm(&prom); err != nil {
			t.Fatal(err)
		}
		return txt.String(), prom.String()
	}
	txtA, promA := render(a)
	txtB, promB := render(b)
	if txtA != txtB {
		t.Fatalf("WriteText depends on registration order:\n%q\nvs\n%q", txtA, txtB)
	}
	if promA != promB {
		t.Fatalf("WriteProm depends on registration order:\n%q\nvs\n%q", promA, promB)
	}
	stats := a.Snapshot()
	if len(stats) != 2 || stats[0].Name != "alpha" || stats[1].Name != "zeta" {
		t.Fatalf("Snapshot not name-sorted: %+v", stats)
	}
	// Repeated renders of the same registry are byte-identical.
	for i := 0; i < 5; i++ {
		txt, prom := render(a)
		if txt != txtA || prom != promA {
			t.Fatalf("render %d not byte-stable", i)
		}
	}
}

func TestWritePromExpositionValid(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("p2p_segments_done_total", "Completed segment downloads.")
	r.Counter("p2p_segments_done_total").Add(7)
	r.Gauge("p2p_active_downloads").Set(3)
	r.SetHelp("p2p_stall_seconds", "Stall durations by cause.")
	hs := r.SecondsHistogram(`p2p_stall_seconds{cause="slow_flow"}`)
	hs.ObserveDuration(250 * time.Millisecond)
	hs.ObserveDuration(4 * time.Second)
	r.SecondsHistogram(`p2p_stall_seconds{cause="empty_pool"}`).ObserveDuration(time.Second)
	r.Histogram(`p2p_segment_bytes{scheme="gop"}`).Observe(100_000)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	m, err := ParsePromText(out)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, out)
	}
	if m.Types["p2p_segments_done_total"] != "counter" {
		t.Errorf("counter family type = %q", m.Types["p2p_segments_done_total"])
	}
	if m.Types["p2p_active_downloads"] != "gauge" {
		t.Errorf("gauge family type = %q", m.Types["p2p_active_downloads"])
	}
	if m.Types["p2p_stall_seconds"] != "histogram" {
		t.Errorf("histogram family type = %q", m.Types["p2p_stall_seconds"])
	}
	if v, ok := m.Value("p2p_segments_done_total"); !ok || v != 7 {
		t.Errorf("counter sample = %v, %v", v, ok)
	}
	if v, ok := m.Value(`p2p_stall_seconds_count{cause="slow_flow"}`); !ok || v != 2 {
		t.Errorf("histogram count sample = %v, %v", v, ok)
	}
	if v, ok := m.Value(`p2p_stall_seconds_sum{cause="slow_flow"}`); !ok || v != 4.25 {
		t.Errorf("histogram sum sample = %v, %v (wanted exact 4.25)", v, ok)
	}
	if v, ok := m.Value(`p2p_stall_seconds_bucket{cause="slow_flow",le="+Inf"}`); !ok || v != 2 {
		t.Errorf("+Inf bucket = %v, %v", v, ok)
	}
	// Cumulative bucket counts must be monotone non-decreasing per series.
	var prev float64
	lines := strings.Split(out, "\n")
	for _, line := range lines {
		if !strings.HasPrefix(line, `p2p_stall_seconds_bucket{cause="slow_flow"`) {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative: %q after %g", line, prev)
		}
		prev = v
	}
	// TYPE must appear exactly once per family.
	if n := strings.Count(out, "# TYPE p2p_stall_seconds "); n != 1 {
		t.Errorf("TYPE for p2p_stall_seconds appears %d times", n)
	}
	if !strings.Contains(out, "# HELP p2p_stall_seconds Stall durations by cause.") {
		t.Error("HELP line missing")
	}
}

// TestTextAndPromAgree is the registry half of satellite 6: both
// renderings derive from one Snap() and must report the same numbers.
func TestTextAndPromAgree(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(41)
	r.Gauge("b").Set(-3)
	h := r.SecondsHistogram("c_seconds")
	h.ObserveDuration(2 * time.Second)
	h.ObserveDuration(500 * time.Millisecond)

	var prom bytes.Buffer
	if err := r.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	m, err := ParsePromText(prom.String())
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Snap()
	for _, s := range snap.Stats {
		if v, ok := m.Value(s.Name); !ok || v != float64(s.Value) {
			t.Errorf("scalar %s: prom=%v,%v text=%d", s.Name, v, ok, s.Value)
		}
	}
	for _, hst := range snap.Hists {
		base, _ := splitSeriesName(hst.Name)
		if v, ok := m.Value(base + "_count"); !ok || v != float64(hst.Count) {
			t.Errorf("hist %s count: prom=%v,%v snap=%d", hst.Name, v, ok, hst.Count)
		}
		if v, ok := m.Value(base + "_sum"); !ok || v != hst.SumScaled() {
			t.Errorf("hist %s sum: prom=%v,%v snap=%v", hst.Name, v, ok, hst.SumScaled())
		}
	}
	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "count=2 sum=2.5") {
		t.Errorf("text dump missing histogram summary: %q", txt.String())
	}
}

func TestParsePromTextRejectsMalformed(t *testing.T) {
	bad := []string{
		"name_only\n",       // no value
		"x{unclosed 1\n",    // broken label block
		`x{l=v} 1` + "\n",   // unquoted label value
		"# TYPE x wibble\n", // unknown type
		"x 1\nx 2\n",        // duplicate series
		"# TYPE x counter\n# TYPE x gauge\nx 1\n", // family redeclared
	}
	for _, in := range bad {
		if _, err := ParsePromText(in); err == nil {
			t.Errorf("ParsePromText(%q) accepted malformed input", in)
		}
	}
	// Trailing timestamps and blank lines are tolerated.
	m, err := ParsePromText("\nx 1 1234567\n\n")
	if err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	if v, ok := m.Value("x"); !ok || v != 1 {
		t.Fatalf("sample = %v, %v", v, ok)
	}
}

func TestReadJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{At: 1500 * time.Microsecond, Peer: 2, Seg: 7, Cat: CatPlayer, Name: EvStallBegin},
		{At: 2 * time.Second, Peer: -1, Seg: -1, Cat: CatSim, Name: EvSimSummary,
			Args: []Arg{Int64("n", 42), Str("cause", CauseSlowFlow), Float64("rate", 1.25)}},
		{At: 0, Peer: 0, Seg: -1, Cat: CatFault, Name: EvPeerCrash},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i, ev := range got {
		want := events[i]
		if ev.At != want.At || ev.Peer != want.Peer || ev.Seg != want.Seg ||
			ev.Cat != want.Cat || ev.Name != want.Name {
			t.Errorf("event %d = %+v, want %+v", i, ev, want)
		}
	}
	// Args survive with values intact (order is re-sorted by key).
	ev := got[1]
	if v := ev.ArgInt64("n", -1); v != 42 {
		t.Errorf("n = %d", v)
	}
	if v := ev.ArgStr("cause", ""); v != CauseSlowFlow {
		t.Errorf("cause = %q", v)
	}
	if v := ev.ArgFloat64("rate", 0); v != 1.25 {
		t.Errorf("rate = %v", v)
	}
	// ArgFloat64 accepts int-kinded args (integral floats round-trip as ints).
	if v := ev.ArgFloat64("n", 0); v != 42 {
		t.Errorf("ArgFloat64 on int arg = %v", v)
	}
	// Malformed input reports the line number.
	if _, err := ReadJSONL(strings.NewReader("{}\nnot json\n")); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Errorf("malformed line error = %v", err)
	}
}
