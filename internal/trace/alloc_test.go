// Zero-allocation tests for the //lint:hotpath contract on the QoE
// recording path. Excluded under -race because race instrumentation
// inserts allocations the production build does not have.

//go:build !race

package trace

import (
	"testing"
	"time"
)

// TestZeroAllocObserve pins Histogram.Observe and ObserveDuration at
// zero heap allocations per observation, nil handles included.
func TestZeroAllocObserve(t *testing.T) {
	h := Histogram{h: &histState{scale: 1e-6}}
	var noop Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
		h.ObserveDuration(5 * time.Millisecond)
		noop.Observe(1)
	})
	if allocs != 0 {
		t.Errorf("Observe allocated %.1f times per call, want 0", allocs)
	}
	if h.Count() != 2002 { // 1001 runs (warm-up included) x 2 live observations
		t.Errorf("count %d after allocation test, want 2002", h.Count())
	}
}

// BenchmarkHotpathHistogramObserve is the -benchmem gate for the QoE
// recording path: `make bench-alloc` fails if it reports nonzero
// allocs/op.
func BenchmarkHotpathHistogramObserve(b *testing.B) {
	h := Histogram{h: &histState{scale: 1e-6}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// TestZeroAllocTimeSeriesObserve pins the TimeSeries observe paths —
// counter, gauge, and per-window histogram, nil handles included — at
// zero heap allocations per observation.
func TestZeroAllocTimeSeriesObserve(t *testing.T) {
	ts := NewTimeSeries(TimeSeriesConfig{Window: time.Second, MaxWindows: 64})
	c := ts.Counter("c")
	g := ts.Gauge("g")
	h := ts.Histogram("h")
	var noopC TSCounter
	var noopG TSGauge
	var noopH TSHist
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc(3 * time.Second)
		g.Observe(5*time.Second, 123)
		h.Observe(7*time.Second, 456)
		h.ObserveDuration(9*time.Second, 2*time.Millisecond)
		noopC.Inc(0)
		noopG.Observe(0, 1)
		noopH.Observe(0, 1)
	})
	if allocs != 0 {
		t.Errorf("TimeSeries observe allocated %.1f times per call, want 0", allocs)
	}
}

// TestZeroAllocSamplerKeep pins the sampler's admission decision at
// zero allocations — it runs on every emitted event in sampled runs.
func TestZeroAllocSamplerKeep(t *testing.T) {
	s := NewHashSampler(42, 0.5, map[string]float64{CatPlayer: 1})
	ev := Event{At: time.Second, Peer: 9, Seg: 4, Cat: CatFlow, Name: EvFlowComplete}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Keep(ev)
	})
	if allocs != 0 {
		t.Errorf("Keep allocated %.1f times per call, want 0", allocs)
	}
}

// BenchmarkHotpathTimeSeriesObserve is the -benchmem gate for the
// windowed observe path.
func BenchmarkHotpathTimeSeriesObserve(b *testing.B) {
	ts := NewTimeSeries(TimeSeriesConfig{Window: time.Second, MaxWindows: 256})
	g := ts.Gauge("g")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Observe(time.Duration(i%200)*time.Second, int64(i))
	}
}

// BenchmarkHotpathTimeSeriesHistObserve gates the bucketed variant.
func BenchmarkHotpathTimeSeriesHistObserve(b *testing.B) {
	ts := NewTimeSeries(TimeSeriesConfig{Window: time.Second, MaxWindows: 256})
	h := ts.Histogram("h")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%200)*time.Second, int64(i))
	}
}

// BenchmarkHotpathSamplerKeep gates the sampling decision.
func BenchmarkHotpathSamplerKeep(b *testing.B) {
	s := NewHashSampler(42, 0.5, nil)
	ev := Event{At: time.Second, Peer: 9, Seg: 4, Cat: CatFlow, Name: EvFlowComplete}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Peer = i
		s.Keep(ev)
	}
}
