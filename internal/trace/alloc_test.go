// Zero-allocation tests for the //lint:hotpath contract on the QoE
// recording path. Excluded under -race because race instrumentation
// inserts allocations the production build does not have.

//go:build !race

package trace

import (
	"testing"
	"time"
)

// TestZeroAllocObserve pins Histogram.Observe and ObserveDuration at
// zero heap allocations per observation, nil handles included.
func TestZeroAllocObserve(t *testing.T) {
	h := Histogram{h: &histState{scale: 1e-6}}
	var noop Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
		h.ObserveDuration(5 * time.Millisecond)
		noop.Observe(1)
	})
	if allocs != 0 {
		t.Errorf("Observe allocated %.1f times per call, want 0", allocs)
	}
	if h.Count() != 2002 { // 1001 runs (warm-up included) x 2 live observations
		t.Errorf("count %d after allocation test, want 2002", h.Count())
	}
}

// BenchmarkHotpathHistogramObserve is the -benchmem gate for the QoE
// recording path: `make bench-alloc` fails if it reports nonzero
// allocs/op.
func BenchmarkHotpathHistogramObserve(b *testing.B) {
	h := Histogram{h: &histState{scale: 1e-6}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
