// Package trace is the structured event layer for the whole stack: the
// deterministic emulator (sim engine, netem flows, simpeer scheduling,
// player state) and the real TCP node both emit the same Event records,
// which downstream tooling renders as JSONL, Chrome trace-event JSON
// (about:tracing / Perfetto), or a per-peer stall timeline.
//
// Determinism contract (DESIGN.md §8): tracing must be provably inert.
// A *Tracer is an observer only — it never draws from an RNG, never
// schedules events, and never reads a clock (every Event carries the
// timestamp its emitter already had). A nil *Tracer is valid and makes
// every Emit a no-op, so instrumented code needs no conditionals and the
// traced and untraced paths execute the same statements.
package trace

import (
	"sync"
	"time"
)

// Event categories. One short tag per emitting subsystem.
const (
	CatSim    = "sim"
	CatFlow   = "flow"
	CatPool   = "pool"
	CatPlayer = "player"
	CatSched  = "sched"
	CatFault  = "fault"
	CatRep    = "rep"
)

// Canonical event names. Emitters and the timeline/attribution tooling
// share these constants so a renamed event cannot silently break pairing.
const (
	// Netem flow lifecycle (CatFlow).
	EvFlowSetup    = "flow_setup"
	EvFlowActivate = "flow_activate"
	EvFlowFreeze   = "flow_freeze"
	EvFlowUnfreeze = "flow_unfreeze"
	EvFlowRamp     = "flow_ramp"
	EvFlowComplete = "flow_complete"
	EvFlowCancel   = "flow_cancel"

	// Scheduling decisions (CatPool for the emulation, CatSched for the
	// real node).
	EvPoolFill     = "pool_fill"
	EvSourcePick   = "source_pick"
	EvSourceRetry  = "source_retry"
	EvSegComplete  = "segment_complete"
	EvSchedule     = "schedule"
	EvScheduleIdle = "schedule_idle"
	EvVerifyFail   = "verify_fail"
	EvStoreFail    = "store_fail"
	EvTimeout      = "download_timeout"

	// Player state (CatPlayer).
	EvStartup    = "startup"
	EvStallBegin = "stall_begin"
	EvStallCause = "stall_cause"
	EvStallEnd   = "stall_end"
	EvFinished   = "playback_finished"

	// Run summary (CatSim).
	EvSimSummary = "sim_summary"

	// Injected faults and their recoveries (CatFault). Every event a
	// fault.Plan fires is traced, so timelines show fault → stall (or
	// fault → masked) causality end to end.
	EvPeerCrash   = "peer_crash"
	EvPeerRejoin  = "peer_rejoin"
	EvLinkDown    = "link_down"
	EvLinkUp      = "link_up"
	EvLinkRate    = "link_rate"
	EvTrackerDown = "tracker_down"
	EvTrackerUp   = "tracker_up"

	// Correlated impairments (CatFault): Gilbert–Elliott burst-loss
	// windows, segment-corruption windows, and the loss-state
	// transitions netem's chains fire while a burst window is open.
	EvBurstLoss    = "burst_loss_start"
	EvBurstLossEnd = "burst_loss_end"
	EvCorrupt      = "corrupt_start"
	EvCorruptEnd   = "corrupt_end"
	EvLossState    = "loss_state"

	// Adversarial peers (CatFault): windows during which a peer serves
	// corrupt data, lies about availability, trickles bytes, or
	// duplicates deliveries. EvServeTimeout fires when a pending request
	// against a source expires without completing.
	EvAdversary    = "adversary_start"
	EvAdversaryEnd = "adversary_end"
	EvDuplicate    = "duplicate_start"
	EvDuplicateEnd = "duplicate_end"
	EvServeTimeout = "serve_timeout"

	// Reputation/quarantine lifecycle (CatRep). The Peer field (or a
	// "peer" string arg on the real stack) names the peer being judged;
	// penalties carry the observation name and resulting score.
	EvRepPenalty     = "rep_penalty"
	EvQuarantine     = "quarantine_begin"
	EvQuarantineEnd  = "quarantine_end"
	EvProbationClear = "probation_clear"
)

// Stall causes attached to EvStallCause events. Every stall must carry
// exactly one of these; the attribution tests enforce it.
const (
	// CauseEmptyPool: nothing was in flight and the scheduler had not
	// launched anything even though a source existed — a scheduler gap.
	CauseEmptyPool = "empty_pool"
	// CauseChokedSources: nothing was in flight because every holder of
	// the next segment was choked/busy (the peer is waiting on a retry).
	CauseChokedSources = "choked_sources"
	// CauseNoSource: nothing was in flight and no connected peer holds
	// the next missing segment at all.
	CauseNoSource = "no_source"
	// CauseFrozenFlow: a download was in flight but frozen in an RTO.
	CauseFrozenFlow = "frozen_flow"
	// CauseSlowFlow: downloads were in flight and moving, just slower
	// than playback.
	CauseSlowFlow = "slow_flow"
	// CausePeerCrash: the stalled peer itself is crashed (its player
	// observes the stall retroactively at rejoin), or the only holders of
	// its next segment are crashed.
	CausePeerCrash = "peer_crash"
	// CauseLinkDown: the peer's own link is administratively down, or
	// every in-flight download rides a downed link.
	CauseLinkDown = "link_down"
	// CauseTrackerDown: no source is known for the next segment and the
	// tracker is unavailable, so no new sources can be discovered.
	CauseTrackerDown = "tracker_down"
	// CauseBurstLoss: the peer's own access link — or the link serving
	// one of its in-flight downloads — is in the Gilbert–Elliott bad
	// (bursting) state, crushing the flows' Mathis caps.
	CauseBurstLoss = "burst_loss"
	// CauseCorruptSegment: a corruption window is open on the peer and a
	// downloaded segment recently failed verification, forcing a
	// re-download of bytes already paid for.
	CauseCorruptSegment = "corrupt_segment"
	// CausePeerQuarantined: every source for the peer's next need —
	// in-flight or prospective — is quarantined by the reputation
	// subsystem, so progress waits on probation or the sole-source
	// escape hatch.
	CausePeerQuarantined = "peer_quarantined"
	// CauseStaleHave: every in-flight download is a pending request
	// against a source that advertised the segment but has not started
	// serving it (a stale-have liar until the serve timeout fires).
	CauseStaleHave = "stale_have"
	// CauseSlowServe: an in-flight pending request is being trickled by a
	// slowloris source below the slow-serve floor.
	CauseSlowServe = "slow_serve"
)

// StallCauses returns the closed set of attributable stall causes, in a
// fixed order. Metric layers register one labeled stall-duration series
// per cause up front, so the recording paths never mutate the registry.
func StallCauses() []string {
	return []string{
		CauseEmptyPool,
		CauseChokedSources,
		CauseNoSource,
		CauseFrozenFlow,
		CauseSlowFlow,
		CausePeerCrash,
		CauseLinkDown,
		CauseTrackerDown,
		CauseBurstLoss,
		CauseCorruptSegment,
		CausePeerQuarantined,
		CauseStaleHave,
		CauseSlowServe,
	}
}

// ArgKind discriminates an Arg's payload.
type ArgKind uint8

const (
	// ArgInt marks an integer argument.
	ArgInt ArgKind = iota
	// ArgFloat marks a float argument.
	ArgFloat
	// ArgStr marks a string argument.
	ArgStr
)

// Arg is one typed key/value attached to an Event. A flat struct (rather
// than map[string]any) keeps emission allocation-light and free of map
// iteration order.
type Arg struct {
	Key   string
	Kind  ArgKind
	Int   int64
	Float float64
	Str   string
}

// Int64 returns an integer argument.
func Int64(key string, v int64) Arg { return Arg{Key: key, Kind: ArgInt, Int: v} }

// Float64 returns a float argument.
func Float64(key string, v float64) Arg { return Arg{Key: key, Kind: ArgFloat, Float: v} }

// Str returns a string argument.
func Str(key, v string) Arg { return Arg{Key: key, Kind: ArgStr, Str: v} }

// Event is one structured trace record. At is whatever clock the emitter
// runs on: virtual time in the emulation, time-since-join on the real
// node. Peer and Seg are -1 when not applicable.
type Event struct {
	At   time.Duration
	Peer int
	Seg  int
	Cat  string
	Name string
	Args []Arg
}

// Arg returns the argument with the given key.
func (ev Event) Arg(key string) (Arg, bool) {
	for _, a := range ev.Args {
		if a.Key == key {
			return a, true
		}
	}
	return Arg{}, false
}

// ArgInt64 returns the integer value of the named argument, or def.
func (ev Event) ArgInt64(key string, def int64) int64 {
	if a, ok := ev.Arg(key); ok && a.Kind == ArgInt {
		return a.Int
	}
	return def
}

// ArgStr returns the string value of the named argument, or def.
func (ev Event) ArgStr(key, def string) string {
	if a, ok := ev.Arg(key); ok && a.Kind == ArgStr {
		return a.Str
	}
	return def
}

// Sink consumes events. Implementations must be safe for concurrent use
// when attached to the real TCP stack; the emulation is single-threaded.
type Sink interface {
	Emit(Event)
}

// Tracer is the handle instrumented code holds. The nil Tracer is valid:
// Emit on nil is a no-op and Enabled reports false, so call sites that
// build costly argument lists can skip the work without a second code
// path for "tracing off".
type Tracer struct {
	sink Sink
}

// New returns a Tracer writing to sink, or nil when sink is nil.
func New(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink}
}

// Enabled reports whether Emit does anything.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// Emit records one event. Safe on a nil Tracer.
func (t *Tracer) Emit(ev Event) {
	if t == nil || t.sink == nil {
		return
	}
	t.sink.Emit(ev)
}

// Buffer is an in-memory Sink. It is safe for concurrent use (the real
// stack emits from several goroutines); in the single-threaded emulation
// the mutex is uncontended.
type Buffer struct {
	mu     sync.Mutex // guards events
	events []Event
}

// NewBuffer returns an empty Buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// Emit appends ev.
func (b *Buffer) Emit(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = append(b.events, ev)
}

// Events returns a copy of the recorded events in emission order.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// Len returns the number of recorded events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}
