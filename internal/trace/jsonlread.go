package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// jsonlLine mirrors AppendJSONL's encoding for decoding. Args values
// stay raw so their kind can be recovered below.
type jsonlLine struct {
	TUs  int64                      `json:"t_us"`
	Cat  string                     `json:"cat"`
	Name string                     `json:"name"`
	Peer *int                       `json:"peer"`
	Seg  *int                       `json:"seg"`
	Args map[string]json.RawMessage `json:"args"`
}

// ReadJSONL decodes a JSONL trace stream back into events. It is the
// inverse of WriteJSONL up to argument order: JSON objects do not
// preserve it, so decoded Args are sorted by key — a deterministic
// order all downstream analysis shares. Blank lines are skipped; a
// malformed line aborts with its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var jl jsonlLine
		if err := json.Unmarshal([]byte(line), &jl); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		ev := Event{
			At:   time.Duration(jl.TUs) * time.Microsecond,
			Peer: -1,
			Seg:  -1,
			Cat:  jl.Cat,
			Name: jl.Name,
		}
		if jl.Peer != nil {
			ev.Peer = *jl.Peer
		}
		if jl.Seg != nil {
			ev.Seg = *jl.Seg
		}
		if len(jl.Args) > 0 {
			keys := make([]string, 0, len(jl.Args))
			for k := range jl.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				a, err := decodeArg(k, jl.Args[k])
				if err != nil {
					return nil, fmt.Errorf("line %d: arg %q: %v", lineNo, k, err)
				}
				ev.Args = append(ev.Args, a)
			}
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// decodeArg recovers an Arg's kind from its raw JSON value: quoted →
// string, integer-shaped → int, otherwise float. AppendJSONL writes
// ints with AppendInt and floats with 'g' formatting, so a float that
// happens to be integral round-trips as ArgInt; the analyzers read
// args by expected kind with fallbacks, so this ambiguity is harmless.
func decodeArg(key string, raw json.RawMessage) (Arg, error) {
	s := string(raw)
	if strings.HasPrefix(s, `"`) {
		var v string
		if err := json.Unmarshal(raw, &v); err != nil {
			return Arg{}, err
		}
		return Str(key, v), nil
	}
	if !strings.ContainsAny(s, ".eE") {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return Int64(key, v), nil
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return Arg{}, err
	}
	return Float64(key, v), nil
}

// ArgFloat64 returns the float value of the named argument, accepting
// an int-kinded arg as well (JSONL round-trips integral floats as
// ints), or def.
func (ev Event) ArgFloat64(key string, def float64) float64 {
	if a, ok := ev.Arg(key); ok {
		switch a.Kind {
		case ArgFloat:
			return a.Float
		case ArgInt:
			return float64(a.Int)
		}
	}
	return def
}
