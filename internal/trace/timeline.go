package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// StallRecord is one stall on a peer's timeline. EndUS is -1 while the
// stall is still open at the end of the trace. Cause is empty only when
// no EvStallCause event accompanied the stall — the attribution tests
// treat that as a failure.
type StallRecord struct {
	Peer    int    `json:"peer"`
	StartUS int64  `json:"start_us"`
	EndUS   int64  `json:"end_us"`
	Cause   string `json:"cause"`
}

// PeerTimeline summarizes one peer's playback from its trace events.
type PeerTimeline struct {
	Peer      int           `json:"peer"`
	StartupUS int64         `json:"startup_us"`
	Finished  bool          `json:"finished"`
	Stalls    []StallRecord `json:"stalls"`
}

// BuildTimeline folds a trace into per-peer stall timelines: every
// EvStallBegin opens a record, the following EvStallCause for the same
// peer attributes it, and EvStallEnd closes it. Peers appear in
// ascending id order.
func BuildTimeline(events []Event) []PeerTimeline {
	byPeer := map[int]*PeerTimeline{}
	open := map[int]int{} // peer -> index into its Stalls of the open record
	get := func(peer int) *PeerTimeline {
		tl := byPeer[peer]
		if tl == nil {
			// Stalls starts non-nil so a stall-free peer renders as
			// "stalls": [] rather than null in the JSON artifact.
			tl = &PeerTimeline{Peer: peer, StartupUS: -1, Stalls: []StallRecord{}}
			byPeer[peer] = tl
		}
		return tl
	}
	for _, ev := range events {
		if ev.Cat != CatPlayer || ev.Peer < 0 {
			continue
		}
		switch ev.Name {
		case EvStartup:
			get(ev.Peer).StartupUS = ev.ArgInt64("startup_us", ev.At.Microseconds())
		case EvStallBegin:
			tl := get(ev.Peer)
			tl.Stalls = append(tl.Stalls, StallRecord{
				Peer: ev.Peer, StartUS: ev.At.Microseconds(), EndUS: -1,
			})
			open[ev.Peer] = len(tl.Stalls) - 1
		case EvStallCause:
			tl := get(ev.Peer)
			if i, ok := open[ev.Peer]; ok && i < len(tl.Stalls) {
				tl.Stalls[i].Cause = ev.ArgStr("cause", "")
			}
		case EvStallEnd:
			tl := get(ev.Peer)
			if i, ok := open[ev.Peer]; ok && i < len(tl.Stalls) {
				tl.Stalls[i].EndUS = ev.At.Microseconds()
				delete(open, ev.Peer)
			}
		case EvFinished:
			get(ev.Peer).Finished = true
		}
	}
	var out []PeerTimeline
	for _, tl := range byPeer {
		out = append(out, *tl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Unattributed returns the stalls lacking a cause. An empty result is
// what the acceptance tests demand: 100% of stalls name a cause.
func Unattributed(tls []PeerTimeline) []StallRecord {
	var out []StallRecord
	for _, tl := range tls {
		for _, s := range tl.Stalls {
			if s.Cause == "" {
				out = append(out, s)
			}
		}
	}
	return out
}

// OpenStalls returns the stalls that never ended within the trace.
func OpenStalls(tls []PeerTimeline) []StallRecord {
	var out []StallRecord
	for _, tl := range tls {
		for _, s := range tl.Stalls {
			if s.EndUS < 0 {
				out = append(out, s)
			}
		}
	}
	return out
}

// WriteTimeline renders the timelines as indented JSON.
func WriteTimeline(w io.Writer, tls []PeerTimeline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tls)
}
