package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) rendered from the same
// RegistrySnapshot the text dump uses, so a scrape and a registry dump
// can never disagree. The output is byte-stable: families and series
// are emitted in sorted order and floats use shortest-round-trip
// formatting of exactly-representable values (power-of-two bucket
// bounds times a fixed scale).

// formatDisplay renders a float deterministically: integers without a
// decimal point, everything else with strconv's shortest round-trip
// form. Used by both the aligned text dump and the exposition writer.
func formatDisplay(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// splitSeriesName separates a registry name into its family base and
// inline label block. `p2p_stall_seconds{cause="slow_flow"}` yields
// ("p2p_stall_seconds", `cause="slow_flow"`); an unlabeled name yields
// ("name", "").
func splitSeriesName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	base = name[:i]
	labels = strings.TrimSuffix(name[i+1:], "}")
	return base, labels
}

// joinLabels combines an inline label block with an extra label (used
// to append le="..." to histogram bucket series).
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	if extra == "" {
		return labels
	}
	return labels + "," + extra
}

type promSeries struct {
	labels string
	value  string // pre-formatted
}

type promFamily struct {
	base   string
	kind   string // "counter", "gauge", "histogram"
	series []promSeries
	hists  []HistStat
}

// WriteProm renders the registry as Prometheus text exposition:
// `# HELP`/`# TYPE` headers per family, counter/gauge sample lines,
// and full histogram families (cumulative `_bucket` series with `le`
// labels, `_sum`, `_count`). Families are sorted by base name and
// series within a family keep the snapshot's sorted order.
func (r *Registry) WriteProm(w io.Writer) error {
	return writePromSnapshot(w, r.Snap())
}

func writePromSnapshot(w io.Writer, snap RegistrySnapshot) error {
	byBase := map[string]*promFamily{}
	var order []string
	family := func(base, kind string) *promFamily {
		f := byBase[base]
		if f == nil {
			f = &promFamily{base: base, kind: kind}
			byBase[base] = f
			order = append(order, base)
		}
		return f
	}
	for _, s := range snap.Stats {
		base, labels := splitSeriesName(s.Name)
		f := family(base, s.Kind)
		f.series = append(f.series, promSeries{labels: labels, value: strconv.FormatInt(s.Value, 10)})
	}
	for _, h := range snap.Hists {
		base, _ := splitSeriesName(h.Name)
		f := family(base, "histogram")
		f.hists = append(f.hists, h)
	}
	sort.Strings(order)
	for _, base := range order {
		f := byBase[base]
		if help := snap.Help[base]; help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, escapeHelp(help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSample(w, base, s.labels, s.value); err != nil {
				return err
			}
		}
		for _, h := range f.hists {
			if err := writeHistSamples(w, base, h); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, base, labels, value string) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", base, value)
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", base, labels, value)
	return err
}

func writeHistSamples(w io.Writer, base string, h HistStat) error {
	_, labels := splitSeriesName(h.Name)
	var cum int64
	for i := 0; i < HistBuckets; i++ {
		cum += h.Counts[i]
		le := formatDisplay(h.UpperScaled(i))
		if err := writeSample(w, base+"_bucket", joinLabels(labels, `le="`+le+`"`), strconv.FormatInt(cum, 10)); err != nil {
			return err
		}
	}
	cum += h.Counts[HistBuckets]
	if err := writeSample(w, base+"_bucket", joinLabels(labels, `le="+Inf"`), strconv.FormatInt(cum, 10)); err != nil {
		return err
	}
	if err := writeSample(w, base+"_sum", labels, formatDisplay(h.SumScaled())); err != nil {
		return err
	}
	return writeSample(w, base+"_count", labels, strconv.FormatInt(h.Count, 10))
}

// escapeHelp escapes backslashes and newlines per the exposition spec.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// PromSample is one parsed exposition sample line.
type PromSample struct {
	Name  string // full series name including label block
	Value float64
}

// PromMetrics is the result of parsing a text exposition: sample values
// keyed by full series name, and family types keyed by base name.
type PromMetrics struct {
	Samples map[string]float64
	Types   map[string]string
}

// Value returns the sample for a full series name and whether it exists.
func (m PromMetrics) Value(name string) (float64, bool) {
	v, ok := m.Samples[name]
	return v, ok
}

// ParsePromText is a strict mini-parser for the subset of the
// Prometheus text format that WriteProm emits. It exists so tests and
// the `splicetrace scrape` smoke check can validate an exposition
// without external dependencies. Errors report the offending line.
func ParsePromText(data string) (PromMetrics, error) {
	m := PromMetrics{Samples: map[string]float64{}, Types: map[string]string{}}
	for ln, line := range strings.Split(data, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				return m, fmt.Errorf("line %d: malformed comment %q", ln+1, line)
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					return m, fmt.Errorf("line %d: malformed TYPE %q", ln+1, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return m, fmt.Errorf("line %d: unknown metric type %q", ln+1, fields[3])
				}
				if prev, dup := m.Types[fields[2]]; dup && prev != fields[3] {
					return m, fmt.Errorf("line %d: family %s redeclared as %s (was %s)", ln+1, fields[2], fields[3], prev)
				}
				m.Types[fields[2]] = fields[3]
			case "HELP":
				// HELP text is free-form; nothing to validate beyond arity.
			default:
				return m, fmt.Errorf("line %d: unknown comment directive %q", ln+1, fields[1])
			}
			continue
		}
		name, value, err := parseSampleLine(line)
		if err != nil {
			return m, fmt.Errorf("line %d: %v", ln+1, err)
		}
		if _, dup := m.Samples[name]; dup {
			return m, fmt.Errorf("line %d: duplicate series %s", ln+1, name)
		}
		m.Samples[name] = value
	}
	return m, nil
}

func parseSampleLine(line string) (string, float64, error) {
	// The name ends at the first space outside a label block.
	var nameEnd int
	inLabels := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == '{' {
			inLabels = true
		}
		if c == '}' {
			inLabels = false
		}
		if c == ' ' && !inLabels {
			nameEnd = i
			break
		}
	}
	if nameEnd == 0 {
		return "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:nameEnd]
	if base, labels := splitSeriesName(name); labels != "" {
		if err := validateLabels(labels); err != nil {
			return "", 0, fmt.Errorf("series %s: %v", base, err)
		}
	} else if strings.ContainsAny(name, "{}") {
		return "", 0, fmt.Errorf("malformed series name %q", name)
	}
	rest := strings.TrimSpace(line[nameEnd:])
	// Ignore an optional trailing timestamp.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		if rest == "+Inf" || rest == "-Inf" || rest == "NaN" {
			return "", 0, fmt.Errorf("unexpected non-finite value %q", rest)
		}
		return "", 0, fmt.Errorf("bad value %q: %v", rest, err)
	}
	return name, v, nil
}

// validateLabels checks that a label block is a comma-separated list of
// key="value" pairs with quoted values.
func validateLabels(labels string) error {
	rest := labels
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label block %q", labels)
		}
		if eq+1 >= len(rest) || rest[eq+1] != '"' {
			return fmt.Errorf("unquoted label value in %q", labels)
		}
		end := strings.IndexByte(rest[eq+2:], '"')
		if end < 0 {
			return fmt.Errorf("unterminated label value in %q", labels)
		}
		rest = rest[eq+2+end+1:]
		if rest == "" {
			return nil
		}
		if rest[0] != ',' {
			return fmt.Errorf("malformed label separator in %q", labels)
		}
		rest = rest[1:]
	}
	return nil
}
