package trace

import (
	"sync"
	"sync/atomic"
)

// HashSampler decides event admission as a pure function of its seed and
// the event's identity (category, name, peer, segment) — never an
// engine RNG, matching the pure-hash idiom the fault layer established
// (fault.CorruptDraw, backoff jitter): attaching or detaching a sampler
// perturbs no other random draw, so sampled tracing stays provably
// inert. The same seed and event always produce the same verdict, on
// any run, worker count, or shard layout.
type HashSampler struct {
	seed uint64
	// rate is the default keep probability in [0,1].
	rate float64
	// perCat overrides the rate for specific categories.
	perCat map[string]float64
}

// NewHashSampler returns a sampler keeping ~rate of events. perCat maps
// event categories to override rates (e.g. keep every CatPlayer event
// but 1% of CatFlow churn); it may be nil.
func NewHashSampler(seed int64, rate float64, perCat map[string]float64) *HashSampler {
	return &HashSampler{seed: uint64(seed), rate: rate, perCat: perCat}
}

// fnv1a64 hashes s without allocating.
//
//lint:hotpath runs per sampled event
func fnv1a64(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Keep reports whether ev is admitted. Pure: hash(seed × category ×
// key) against the category's rate.
//
//lint:hotpath runs on every emitted event when sampling is attached
func (s *HashSampler) Keep(ev Event) bool {
	if s == nil {
		return true
	}
	rate := s.rate
	if r, ok := s.perCat[ev.Cat]; ok {
		rate = r
	}
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	h := fnv1a64(14695981039346656037, ev.Cat)
	h = fnv1a64(h, ev.Name)
	h = splitmixTrace(s.seed ^ h ^
		uint64(ev.Peer)*0x9e3779b97f4a7c15 ^
		uint64(ev.Seg)*0xbf58476d1ce4e5b9)
	// u in [0,1) from the top 53 bits, as fault's jitter draw.
	u := float64(h>>11) / (1 << 53)
	return u < rate
}

// splitmixTrace is the SplitMix64 finalizer (same construction as the
// fault package's pure draws): avalanches every input bit so nearby
// (seed, peer, seg) tuples decorrelate.
//
//lint:hotpath runs per sampled event
func splitmixTrace(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RingCounts reports a Ring's admission accounting. Sampled + Rejected
// equals the number of Emit calls; Dropped counts admitted events later
// evicted by capacity.
type RingCounts struct {
	Sampled  int64 `json:"sampled"`
	Rejected int64 `json:"rejected"`
	Dropped  int64 `json:"dropped"`
}

// Ring is a bounded in-memory Sink: a fixed-capacity circular buffer
// holding the most recent admitted events, with an optional HashSampler
// in front. It replaces the unbounded Buffer for swarm-scale runs —
// memory is fixed at capacity events no matter how long the run is, and
// the explicit sampled/rejected/dropped counters make the bound honest:
// nothing disappears without being counted.
type Ring struct {
	mu      sync.Mutex // guards buf, start, size
	buf     []Event
	start   int
	size    int
	sampler *HashSampler
	// counters are atomics so Counts() needs no lock ordering with Emit.
	sampled  int64
	rejected int64
	dropped  int64
}

// NewRing returns a Ring holding at most capacity admitted events
// (minimum 1). sampler may be nil to admit everything.
func NewRing(capacity int, sampler *HashSampler) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity), sampler: sampler}
}

// Emit runs the sampler and, on admission, appends ev, evicting the
// oldest event when full.
func (r *Ring) Emit(ev Event) {
	if !r.sampler.Keep(ev) {
		atomic.AddInt64(&r.rejected, 1)
		return
	}
	atomic.AddInt64(&r.sampled, 1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.size == len(r.buf) {
		r.buf[r.start] = ev
		r.start = (r.start + 1) % len(r.buf)
		atomic.AddInt64(&r.dropped, 1)
		return
	}
	r.buf[(r.start+r.size)%len(r.buf)] = ev
	r.size++
}

// Events returns a copy of the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.size)
	for i := 0; i < r.size; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// Counts returns the admission accounting.
func (r *Ring) Counts() RingCounts {
	return RingCounts{
		Sampled:  atomic.LoadInt64(&r.sampled),
		Rejected: atomic.LoadInt64(&r.rejected),
		Dropped:  atomic.LoadInt64(&r.dropped),
	}
}
