package trace

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestTimeSeriesWindowing(t *testing.T) {
	ts := NewTimeSeries(TimeSeriesConfig{Window: time.Second, MaxWindows: 8})
	c := ts.Counter("segs")
	g := ts.Gauge("buffered_us")
	h := ts.Histogram("pool_k")

	c.Inc(0)
	c.Inc(999 * time.Millisecond) // still window 0
	c.Add(time.Second, 3)         // window 1 starts exactly at the boundary
	g.Observe(500*time.Millisecond, 40)
	g.Observe(700*time.Millisecond, 10)
	g.Observe(2500*time.Millisecond, 25)
	h.Observe(1500*time.Millisecond, 4)
	h.Observe(1600*time.Millisecond, 8)

	snap := ts.Snap()
	if snap.WindowNanos != int64(time.Second) {
		t.Fatalf("window %d, want 1s", snap.WindowNanos)
	}
	byName := map[string]TSSeriesStat{}
	for _, s := range snap.Series {
		byName[s.Name] = s
	}
	segs := byName["segs"]
	if segs.Kind != TSKindCounter || len(segs.Windows) != 2 {
		t.Fatalf("segs: kind=%s windows=%d, want counter/2", segs.Kind, len(segs.Windows))
	}
	if segs.Windows[0].Count != 2 || segs.Windows[0].Sum != 2 {
		t.Errorf("segs window 0 = %+v, want count=2 sum=2", segs.Windows[0])
	}
	if segs.Windows[1].Count != 1 || segs.Windows[1].Sum != 3 {
		t.Errorf("segs window 1 = %+v, want count=1 sum=3", segs.Windows[1])
	}
	buf := byName["buffered_us"]
	if len(buf.Windows) != 3 {
		t.Fatalf("buffered_us windows=%d, want 3 (dense through window 2)", len(buf.Windows))
	}
	if w := buf.Windows[0]; w.Count != 2 || w.Sum != 50 || w.Min != 10 || w.Max != 40 {
		t.Errorf("buffered_us window 0 = %+v, want count=2 sum=50 min=10 max=40", w)
	}
	if w := buf.Windows[1]; w.Count != 0 || w.Min != 0 || w.Max != 0 {
		t.Errorf("buffered_us window 1 = %+v, want empty", w)
	}
	pool := byName["pool_k"]
	if pool.Kind != TSKindHist || pool.Windows[1].Buckets == nil {
		t.Fatalf("pool_k: kind=%s buckets=%v, want hist with buckets", pool.Kind, pool.Windows[1].Buckets)
	}
	hist := pool.Windows[1].Hist(pool.Name, pool.Scale)
	if q := hist.Quantile(1); q != 8 {
		t.Errorf("pool_k window-1 p100 = %v, want 8", q)
	}
}

func TestTimeSeriesNilAndClamp(t *testing.T) {
	var nilTS *TimeSeries
	nilTS.Counter("x").Inc(0)
	nilTS.Gauge("y").Observe(0, 1)
	nilTS.Histogram("z").Observe(0, 1)
	if snap := nilTS.Snap(); len(snap.Series) != 0 || snap.WindowNanos != 0 {
		t.Fatalf("nil snapshot = %+v, want empty", snap)
	}

	ts := NewTimeSeries(TimeSeriesConfig{Window: time.Second, MaxWindows: 2})
	g := ts.Gauge("g")
	g.Observe(-5*time.Second, 7) // clamps low into window 0, uncounted
	g.Observe(10*time.Second, 9) // clamps high into the last window, counted
	snap := ts.Snap()
	s := snap.Series[0]
	if s.Clamped != 1 {
		t.Errorf("clamped = %d, want 1", s.Clamped)
	}
	if len(s.Windows) != 2 || s.Windows[0].Min != 7 || s.Windows[1].Max != 9 {
		t.Errorf("windows = %+v, want low clamp in 0 and high clamp in 1", s.Windows)
	}
}

func TestMergeTS(t *testing.T) {
	build := func(vals ...int64) TSSnapshot {
		ts := NewTimeSeries(TimeSeriesConfig{Window: time.Second, MaxWindows: 8})
		g := ts.Gauge("g")
		h := ts.SecondsHistogram("h")
		for i, v := range vals {
			at := time.Duration(i) * 400 * time.Millisecond
			g.Observe(at, v)
			h.Observe(at, v)
		}
		return ts.Snap()
	}
	a := build(5, 10, 15)
	b := build(2, 20)
	ab, err := MergeTS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := MergeTS(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ab, ba) {
		t.Fatal("MergeTS is not commutative")
	}
	g := ab.Series[0]
	if g.Name != "g" {
		t.Fatalf("series order %q, want g first", g.Name)
	}
	// Window 0 holds every observation (0ms, 400ms, 800ms) from both sides.
	if w := g.Windows[0]; w.Count != 5 || w.Sum != 52 || w.Min != 2 || w.Max != 20 {
		t.Errorf("merged window 0 = %+v, want count=5 sum=52 min=2 max=20", w)
	}

	other := NewTimeSeries(TimeSeriesConfig{Window: 2 * time.Second})
	other.Gauge("g").Observe(0, 1)
	if _, err := MergeTS(a, other.Snap()); err == nil {
		t.Error("merging mismatched window widths should error")
	}
	kindTS := NewTimeSeries(TimeSeriesConfig{Window: time.Second})
	kindTS.Counter("g").Inc(0)
	if _, err := MergeTS(a, kindTS.Snap()); err == nil {
		t.Error("merging mismatched series kinds should error")
	}
}

// TestTimeSeriesConcurrentDeterministic proves the commutative
// aggregation claim: any interleaving of a fixed observation set
// produces a bit-identical snapshot, CSV included.
func TestTimeSeriesConcurrentDeterministic(t *testing.T) {
	type obs struct {
		at time.Duration
		v  int64
	}
	var all []obs
	for i := 0; i < 2000; i++ {
		all = append(all, obs{at: time.Duration(i*13%5000) * time.Millisecond, v: int64(i*7%900 + 1)})
	}
	run := func(workers int) TSSnapshot {
		ts := NewTimeSeries(TimeSeriesConfig{Window: 500 * time.Millisecond, MaxWindows: 16})
		g := ts.Gauge("g")
		h := ts.Histogram("h")
		var wg sync.WaitGroup
		per := len(all) / workers
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(chunk []obs) {
				defer wg.Done()
				for _, o := range chunk {
					g.Observe(o.at, o.v)
					h.Observe(o.at, o.v)
				}
			}(all[w*per : (w+1)*per])
		}
		wg.Wait()
		return ts.Snap()
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("snapshot differs between serial and 4-way concurrent recording")
	}
	var csvA, csvB bytes.Buffer
	if err := serial.WriteCSV(&csvA); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteCSV(&csvB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvA.Bytes(), csvB.Bytes()) {
		t.Fatal("CSV differs between serial and concurrent recording")
	}
	if csvA.Len() == 0 {
		t.Fatal("empty CSV")
	}
}

func TestTimeSeriesPublishGauges(t *testing.T) {
	ts := NewTimeSeries(TimeSeriesConfig{Window: time.Second, MaxWindows: 4})
	ts.Gauge("inflight").Observe(1500*time.Millisecond, 3)
	ts.Gauge("inflight").Observe(9*time.Second, 1) // clamps
	reg := NewRegistry()
	ts.Snap().PublishGauges(reg)

	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	pm, err := ParsePromText(prom.String())
	if err != nil {
		t.Fatalf("exposition with ts-derived gauges does not parse: %v", err)
	}
	checks := map[string]float64{
		`p2p_ts_windows{series="inflight"}`:      4,
		`p2p_ts_observations{series="inflight"}`: 2,
		`p2p_ts_clamped{series="inflight"}`:      1,
	}
	for name, want := range checks {
		got, ok := pm.Value(name)
		if !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", name, got, ok, want)
		}
	}
}
