package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TimeSeries adds the time dimension to the telemetry stack: fixed-width
// virtual-time windows, each aggregating the observations that fall
// inside it. End-state registries answer "how bad was it overall"; a
// TimeSeries answers "when" — buffer occupancy over the run, in-flight
// flows per second, the stall fraction as a swarm warms up.
//
// The determinism contract matches the rest of the package (DESIGN.md
// §8, §15): observing reads no clock (every observation carries its own
// virtual timestamp), draws from no RNG, and aggregates only with
// commutative integer operations (sums, counts, CAS min/max, bucket
// increments), so concurrent observers produce bit-identical windows in
// any interleaving. A nil *TimeSeries is valid and hands out no-op
// handles, so instrumented code never branches on whether the layer is
// attached.
//
// Storage is preallocated at registration time: the observe path indexes
// a fixed array and issues atomic adds — zero allocations, zero locks
// (//lint:hotpath; the alloc benchmarks gate it). Observations past the
// last window clamp into it and are counted in Clamped rather than
// silently dropped or, worse, grown into (growth would allocate on the
// hot path and make memory a function of run length).
type TimeSeries struct {
	window     time.Duration
	maxWindows int
	mu         sync.Mutex // guards series; handles update lock-free
	series     map[string]*tsSeries
}

// TimeSeriesConfig sizes a TimeSeries.
type TimeSeriesConfig struct {
	// Window is the aggregation window width in virtual time
	// (default 1s, minimum 1µs — windowing runs at the trace layer's
	// microsecond resolution so trace-derived series bucket identically).
	Window time.Duration
	// MaxWindows bounds the preallocated window count per series
	// (default 1024). Observations beyond Window*MaxWindows clamp into
	// the final window and increment the series' Clamped counter.
	MaxWindows int
}

// Series kinds.
const (
	TSKindCounter = "counter"
	TSKindGauge   = "gauge"
	TSKindHist    = "hist"
)

// Canonical emulation series names, shared by the in-process recorder
// (simpeer) and the trace-derived builder (tracereport): both sides must
// produce the same series from the same run, and the coherence tests
// compare them by these names.
const (
	// TSBufferOccupancyUS samples each peer's buffered playback lead
	// (microseconds) at every pool-fill decision.
	TSBufferOccupancyUS = "sim_buffer_occupancy_us"
	// TSPoolTargetK is the per-window distribution of Equation-1 pool
	// targets at pool-fill decisions.
	TSPoolTargetK = "sim_pool_target_k"
	// TSInflightFlows samples the post-fill in-flight download count.
	TSInflightFlows = "sim_inflight_flows"
	// TSStalledPeers samples the number of concurrently stalled peers at
	// every playback transition that changes it.
	TSStalledPeers = "sim_stalled_peers"
	// TSStallFractionPermille samples stalled peers per 1000 leechers at
	// the same transitions.
	TSStallFractionPermille = "sim_stall_fraction_permille"
	// TSSegmentsCompleted counts verified segment completions per window.
	TSSegmentsCompleted = "sim_segments_completed"
)

// NewTimeSeries returns an empty TimeSeries. Zero config fields take
// the documented defaults.
func NewTimeSeries(cfg TimeSeriesConfig) *TimeSeries {
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.Window < time.Microsecond {
		cfg.Window = time.Microsecond
	}
	if cfg.MaxWindows <= 0 {
		cfg.MaxWindows = 1024
	}
	return &TimeSeries{
		window:     cfg.Window,
		maxWindows: cfg.MaxWindows,
		series:     map[string]*tsSeries{},
	}
}

// Window returns the configured window width (0 on nil).
func (ts *TimeSeries) Window() time.Duration {
	if ts == nil {
		return 0
	}
	return ts.window
}

// tsCell is one window's aggregate for one series. All fields are
// atomics; min/max use CAS loops. Exact integer aggregation commutes,
// so parallel shards and worker pools fold into identical cells.
type tsCell struct {
	count int64
	sum   int64
	min   int64 // math.MaxInt64 when empty
	max   int64 // math.MinInt64 when empty
}

// tsSeries is the shared storage behind one named series.
type tsSeries struct {
	name    string
	kind    string
	scale   float64 // display-unit conversion, as histState.scale
	window  int64   // window width in microseconds (copied for the hot path)
	cells   []tsCell
	buckets [][histSlots]int64 // hist kind only; len(cells) entries
	hi      int64              // atomic: highest window index observed, -1 when empty
	clamped int64              // atomic: observations clamped into the last window
}

func (ts *TimeSeries) register(name, kind string, scale float64) *tsSeries {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	s := ts.series[name]
	if s == nil {
		s = &tsSeries{
			name:   name,
			kind:   kind,
			scale:  scale,
			window: ts.window.Microseconds(),
			cells:  make([]tsCell, ts.maxWindows),
			hi:     -1,
		}
		for i := range s.cells {
			atomic.StoreInt64(&s.cells[i].min, math.MaxInt64)
			atomic.StoreInt64(&s.cells[i].max, math.MinInt64)
		}
		if kind == TSKindHist {
			s.buckets = make([][histSlots]int64, ts.maxWindows)
		}
		ts.series[name] = s
	}
	if s.kind != kind {
		panic(fmt.Sprintf("trace: time series %q registered as %s and %s", name, s.kind, kind))
	}
	return s
}

// windowIndex maps a virtual timestamp to a window slot, clamping out-of
// range observations into the boundary windows (counting high clamps).
// Timestamps quantize to microseconds first — the trace layer's native
// resolution — so series rebuilt from JSONL events bucket identically to
// the in-process recorder.
//
//lint:hotpath runs on every observation
func (s *tsSeries) windowIndex(at time.Duration) int {
	w := at.Microseconds() / s.window
	if w < 0 {
		return 0
	}
	if w >= int64(len(s.cells)) {
		atomic.AddInt64(&s.clamped, 1)
		return len(s.cells) - 1
	}
	return int(w)
}

// raiseHi lifts the high-water window index to at least w.
//
//lint:hotpath runs on every observation
func (s *tsSeries) raiseHi(w int64) {
	for {
		cur := atomic.LoadInt64(&s.hi)
		if cur >= w || atomic.CompareAndSwapInt64(&s.hi, cur, w) {
			return
		}
	}
}

// observe folds one value into the window containing at.
//
//lint:hotpath called per telemetry event; the benchmarks assert 0 allocs/op
func (s *tsSeries) observe(at time.Duration, v int64) {
	w := s.windowIndex(at)
	c := &s.cells[w]
	atomic.AddInt64(&c.count, 1)
	atomic.AddInt64(&c.sum, v)
	for {
		cur := atomic.LoadInt64(&c.min)
		if v >= cur || atomic.CompareAndSwapInt64(&c.min, cur, v) {
			break
		}
	}
	for {
		cur := atomic.LoadInt64(&c.max)
		if v <= cur || atomic.CompareAndSwapInt64(&c.max, cur, v) {
			break
		}
	}
	if s.buckets != nil {
		atomic.AddInt64(&s.buckets[w][histBucketIndex(v)], 1)
	}
	s.raiseHi(int64(w))
}

// TSCounter accumulates per-window deltas (events per window). The zero
// handle, from a nil TimeSeries, is a no-op.
type TSCounter struct{ s *tsSeries }

// Add folds delta into the window containing at.
//
//lint:hotpath called per telemetry event; the benchmarks assert 0 allocs/op
func (c TSCounter) Add(at time.Duration, delta int64) {
	if c.s != nil {
		c.s.observe(at, delta)
	}
}

// Inc adds one.
//
//lint:hotpath called per telemetry event; the benchmarks assert 0 allocs/op
func (c TSCounter) Inc(at time.Duration) { c.Add(at, 1) }

// TSGauge records sampled instantaneous values; each window keeps the
// sample count, sum (for the mean), min, and max. The zero handle is a
// no-op.
type TSGauge struct{ s *tsSeries }

// Observe records one sample at virtual time at.
//
//lint:hotpath called per telemetry event; the benchmarks assert 0 allocs/op
func (g TSGauge) Observe(at time.Duration, v int64) {
	if g.s != nil {
		g.s.observe(at, v)
	}
}

// TSHist records per-window distributions in the package's fixed
// power-of-two buckets, so every window can answer quantile queries with
// the same byte-stable arithmetic as the end-state histograms. The zero
// handle is a no-op.
type TSHist struct{ s *tsSeries }

// Observe records one raw observation at virtual time at.
//
//lint:hotpath called per telemetry event; the benchmarks assert 0 allocs/op
func (h TSHist) Observe(at time.Duration, v int64) {
	if h.s != nil {
		h.s.observe(at, v)
	}
}

// ObserveDuration records a duration in microseconds (pair with a 1e-6
// scale, mirroring Registry.SecondsHistogram).
//
//lint:hotpath called per telemetry event; the benchmarks assert 0 allocs/op
func (h TSHist) ObserveDuration(at time.Duration, d time.Duration) {
	h.Observe(at, d.Microseconds())
}

// Counter returns the named per-window counter series, creating it on
// first use. Safe on nil.
func (ts *TimeSeries) Counter(name string) TSCounter {
	if ts == nil {
		return TSCounter{}
	}
	return TSCounter{s: ts.register(name, TSKindCounter, 1)}
}

// Gauge returns the named sampled-gauge series. Safe on nil.
func (ts *TimeSeries) Gauge(name string) TSGauge {
	if ts == nil {
		return TSGauge{}
	}
	return TSGauge{s: ts.register(name, TSKindGauge, 1)}
}

// Histogram returns the named per-window histogram series recording raw
// int64 units. Safe on nil.
func (ts *TimeSeries) Histogram(name string) TSHist {
	if ts == nil {
		return TSHist{}
	}
	return TSHist{s: ts.register(name, TSKindHist, 1)}
}

// SecondsHistogram returns the named per-window histogram recording
// microseconds and exposing seconds. Safe on nil.
func (ts *TimeSeries) SecondsHistogram(name string) TSHist {
	if ts == nil {
		return TSHist{}
	}
	return TSHist{s: ts.register(name, TSKindHist, 1e-6)}
}

// TSWindow is one window's immutable aggregate. Empty windows (Count 0)
// are materialized so consumers see a dense, gap-free timeline; their
// Min/Max/Sum are zero.
type TSWindow struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	// Buckets holds the window's non-cumulative histogram counts for
	// hist-kind series; nil otherwise.
	Buckets *[histSlots]int64 `json:"buckets,omitempty"`
}

// Hist adapts a hist-kind window to HistStat so quantile queries share
// the registry histograms' exact arithmetic.
func (w TSWindow) Hist(name string, scale float64) HistStat {
	st := HistStat{Name: name, Scale: scale, Count: w.Count, Sum: w.Sum}
	if w.Buckets != nil {
		st.Counts = *w.Buckets
	}
	return st
}

// TSSeriesStat is one series' snapshot: dense windows 0..hi plus the
// clamp counter.
type TSSeriesStat struct {
	Name    string     `json:"name"`
	Kind    string     `json:"kind"`
	Scale   float64    `json:"scale"`
	Clamped int64      `json:"clamped"`
	Windows []TSWindow `json:"windows"`
}

// Total returns the series' total observation count across windows.
func (s TSSeriesStat) Total() int64 {
	var n int64
	for _, w := range s.Windows {
		n += w.Count
	}
	return n
}

// TSSnapshot is one coherent view of every series. Like
// RegistrySnapshot it is the single read path: the CSV export, the text
// report, and the derived registry gauges all render from the same
// Snap() result, so they cannot disagree.
type TSSnapshot struct {
	// WindowNanos is the window width in nanoseconds.
	WindowNanos int64 `json:"window_nanos"`
	// Series is sorted by name.
	Series []TSSeriesStat `json:"series"`
}

// Snap returns the full snapshot: series sorted by name, each with its
// dense window list (empty trailing windows trimmed at the high-water
// mark). A nil TimeSeries yields an empty snapshot.
func (ts *TimeSeries) Snap() TSSnapshot {
	var snap TSSnapshot
	if ts == nil {
		return snap
	}
	snap.WindowNanos = int64(ts.window)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for _, s := range ts.series {
		snap.Series = append(snap.Series, s.snapshot())
	}
	sort.Slice(snap.Series, func(i, j int) bool { return snap.Series[i].Name < snap.Series[j].Name })
	return snap
}

func (s *tsSeries) snapshot() TSSeriesStat {
	st := TSSeriesStat{
		Name:    s.name,
		Kind:    s.kind,
		Scale:   s.scale,
		Clamped: atomic.LoadInt64(&s.clamped),
	}
	hi := atomic.LoadInt64(&s.hi)
	for w := int64(0); w <= hi; w++ {
		c := &s.cells[w]
		win := TSWindow{
			Count: atomic.LoadInt64(&c.count),
			Sum:   atomic.LoadInt64(&c.sum),
		}
		if win.Count > 0 {
			win.Min = atomic.LoadInt64(&c.min)
			win.Max = atomic.LoadInt64(&c.max)
		}
		if s.buckets != nil {
			b := new([histSlots]int64)
			for i := range b {
				b[i] = atomic.LoadInt64(&s.buckets[w][i])
			}
			win.Buckets = b
		}
		st.Windows = append(st.Windows, win)
	}
	return st
}

// MergeTS folds b into a and returns the result: per-window sums and
// counts add, mins and maxes combine, clamp counters add, series found
// in only one side carry over. Merging is commutative and associative —
// shard snapshots fold into the same totals in any order — but both
// sides must agree on the window width and on each shared series' kind.
func MergeTS(a, b TSSnapshot) (TSSnapshot, error) {
	if a.WindowNanos == 0 {
		return b, nil
	}
	if b.WindowNanos == 0 {
		return a, nil
	}
	if a.WindowNanos != b.WindowNanos {
		return TSSnapshot{}, fmt.Errorf("trace: merging time series with window %d vs %d ns", a.WindowNanos, b.WindowNanos)
	}
	out := TSSnapshot{WindowNanos: a.WindowNanos}
	byName := map[string]TSSeriesStat{}
	for _, s := range a.Series {
		byName[s.Name] = s
	}
	for _, s := range b.Series {
		prev, ok := byName[s.Name]
		if !ok {
			byName[s.Name] = s
			continue
		}
		merged, err := mergeSeries(prev, s)
		if err != nil {
			return TSSnapshot{}, err
		}
		byName[s.Name] = merged
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out.Series = append(out.Series, byName[n])
	}
	return out, nil
}

func mergeSeries(a, b TSSeriesStat) (TSSeriesStat, error) {
	if a.Kind != b.Kind {
		return TSSeriesStat{}, fmt.Errorf("trace: merging series %q with kind %s vs %s", a.Name, a.Kind, b.Kind)
	}
	out := TSSeriesStat{Name: a.Name, Kind: a.Kind, Scale: a.Scale, Clamped: a.Clamped + b.Clamped}
	n := len(a.Windows)
	if len(b.Windows) > n {
		n = len(b.Windows)
	}
	out.Windows = make([]TSWindow, n)
	for i := range out.Windows {
		var wa, wb TSWindow
		if i < len(a.Windows) {
			wa = a.Windows[i]
		}
		if i < len(b.Windows) {
			wb = b.Windows[i]
		}
		out.Windows[i] = mergeWindow(wa, wb)
	}
	return out, nil
}

func mergeWindow(a, b TSWindow) TSWindow {
	out := TSWindow{Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	switch {
	case a.Count == 0:
		out.Min, out.Max = b.Min, b.Max
	case b.Count == 0:
		out.Min, out.Max = a.Min, a.Max
	default:
		out.Min, out.Max = a.Min, a.Max
		if b.Min < out.Min {
			out.Min = b.Min
		}
		if b.Max > out.Max {
			out.Max = b.Max
		}
	}
	if a.Buckets != nil || b.Buckets != nil {
		sum := new([histSlots]int64)
		if a.Buckets != nil {
			*sum = *a.Buckets
		}
		if b.Buckets != nil {
			for i, c := range b.Buckets {
				sum[i] += c
			}
		}
		out.Buckets = sum
	}
	return out
}

// WriteCSV renders the snapshot as one row per (series, window) with a
// fixed header. Output is byte-stable: rows follow Snap()'s sorted
// order and floats use the exposition formatter. Quantile columns are
// populated for hist-kind series and empty otherwise.
func (snap TSSnapshot) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "series,kind,window,start_us,count,sum,mean,min,max,p50,p95,p99\n"); err != nil {
		return err
	}
	windowUS := snap.WindowNanos / 1e3
	for _, s := range snap.Series {
		for i, win := range s.Windows {
			var mean float64
			if win.Count > 0 {
				mean = float64(win.Sum) / float64(win.Count)
			}
			p50, p95, p99 := "", "", ""
			if s.Kind == TSKindHist {
				h := win.Hist(s.Name, s.Scale)
				p50 = formatDisplay(h.Quantile(0.50))
				p95 = formatDisplay(h.Quantile(0.95))
				p99 = formatDisplay(h.Quantile(0.99))
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%s,%d,%d,%s,%s,%s\n",
				s.Name, s.Kind, i, int64(i)*windowUS,
				win.Count, win.Sum, formatDisplay(mean), win.Min, win.Max,
				p50, p95, p99); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteText renders a per-series summary: window span, totals, overall
// min/max, and the clamp counter. Byte-stable for the same snapshot.
func (snap TSSnapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "time series: %d series, window %s\n",
		len(snap.Series), time.Duration(snap.WindowNanos)); err != nil {
		return err
	}
	for _, s := range snap.Series {
		var total, sum int64
		min, max := int64(math.MaxInt64), int64(math.MinInt64)
		for _, win := range s.Windows {
			total += win.Count
			sum += win.Sum
			if win.Count > 0 {
				if win.Min < min {
					min = win.Min
				}
				if win.Max > max {
					max = win.Max
				}
			}
		}
		if total == 0 {
			min, max = 0, 0
		}
		if _, err := fmt.Fprintf(w, "  %-28s %-7s windows=%d count=%d sum=%d min=%d max=%d clamped=%d\n",
			s.Name, s.Kind, len(s.Windows), total, sum, min, max, s.Clamped); err != nil {
			return err
		}
	}
	return nil
}

// PublishGauges derives end-state registry gauges from the snapshot —
// per-series window span, total observations, and clamp counts — so the
// /metrics exposition reflects the time-series layer through the same
// single read path. Derived names carry the series as an inline label.
func (snap TSSnapshot) PublishGauges(reg *Registry) {
	if reg == nil {
		return
	}
	reg.SetHelp("p2p_ts_windows", "Windows spanned per time series.")
	reg.SetHelp("p2p_ts_observations", "Total observations per time series.")
	reg.SetHelp("p2p_ts_clamped", "Observations clamped into the final window per time series.")
	for _, s := range snap.Series {
		label := fmt.Sprintf("{series=%q}", s.Name)
		reg.Gauge("p2p_ts_windows" + label).Set(int64(len(s.Windows)))
		reg.Gauge("p2p_ts_observations" + label).Set(s.Total())
		reg.Gauge("p2p_ts_clamped" + label).Set(s.Clamped)
	}
}
