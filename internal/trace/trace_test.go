package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func testEvents() []Event {
	return []Event{
		{At: 100 * time.Millisecond, Peer: 1, Seg: -1, Cat: CatPlayer, Name: EvStartup,
			Args: []Arg{Int64("startup_us", 100_000)}},
		{At: 200 * time.Millisecond, Peer: 1, Seg: 3, Cat: CatFlow, Name: EvFlowActivate,
			Args: []Arg{Int64("flow", 7), Float64("rate", 131072.5)}},
		{At: 500 * time.Millisecond, Peer: 1, Seg: -1, Cat: CatPlayer, Name: EvStallBegin},
		{At: 500 * time.Millisecond, Peer: 1, Seg: -1, Cat: CatPlayer, Name: EvStallCause,
			Args: []Arg{Str("cause", CauseFrozenFlow), Int64("inflight", 2)}},
		{At: 900 * time.Millisecond, Peer: 1, Seg: 3, Cat: CatFlow, Name: EvFlowComplete,
			Args: []Arg{Int64("flow", 7)}},
		{At: time.Second, Peer: 1, Seg: -1, Cat: CatPlayer, Name: EvStallEnd},
		{At: 2 * time.Second, Peer: 1, Seg: -1, Cat: CatPlayer, Name: EvFinished},
		{At: 2 * time.Second, Peer: -1, Seg: -1, Cat: CatSim, Name: EvSimSummary,
			Args: []Arg{Int64("events_fired", 1234)}},
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(Event{Name: "x"}) // must not panic
	if got := New(nil); got != nil {
		t.Fatalf("New(nil) = %v, want nil", got)
	}
}

func TestBufferRecordsInOrder(t *testing.T) {
	buf := NewBuffer()
	tr := New(buf)
	if !tr.Enabled() {
		t.Fatal("tracer with sink not enabled")
	}
	for _, ev := range testEvents() {
		tr.Emit(ev)
	}
	got := buf.Events()
	if len(got) != len(testEvents()) {
		t.Fatalf("recorded %d events, want %d", len(got), len(testEvents()))
	}
	if got[0].Name != EvStartup || got[len(got)-1].Name != EvSimSummary {
		t.Fatalf("order mangled: first %q last %q", got[0].Name, got[len(got)-1].Name)
	}
	// The returned slice is a copy.
	got[0].Name = "mutated"
	if buf.Events()[0].Name != EvStartup {
		t.Fatal("Events() aliases the internal slice")
	}
}

func TestBufferConcurrentEmit(t *testing.T) {
	buf := NewBuffer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				buf.Emit(Event{Peer: -1, Seg: -1, Name: "n"})
			}
		}()
	}
	wg.Wait()
	if buf.Len() != 800 {
		t.Fatalf("Len = %d, want 800", buf.Len())
	}
}

func TestJSONLRoundTrips(t *testing.T) {
	var b bytes.Buffer
	if err := WriteJSONL(&b, testEvents()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != len(testEvents()) {
		t.Fatalf("%d lines, want %d", len(lines), len(testEvents()))
	}
	for i, line := range lines {
		var rec struct {
			TUS  int64          `json:"t_us"`
			Cat  string         `json:"cat"`
			Name string         `json:"name"`
			Peer *int           `json:"peer"`
			Seg  *int           `json:"seg"`
			Args map[string]any `json:"args"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, line)
		}
		want := testEvents()[i]
		if rec.TUS != want.At.Microseconds() || rec.Name != want.Name || rec.Cat != want.Cat {
			t.Fatalf("line %d = %+v, want %v", i, rec, want)
		}
		if want.Peer >= 0 && (rec.Peer == nil || *rec.Peer != want.Peer) {
			t.Fatalf("line %d peer = %v, want %d", i, rec.Peer, want.Peer)
		}
		if want.Peer < 0 && rec.Peer != nil {
			t.Fatalf("line %d has peer %d, want omitted", i, *rec.Peer)
		}
		if len(want.Args) != len(rec.Args) {
			t.Fatalf("line %d has %d args, want %d", i, len(rec.Args), len(want.Args))
		}
	}
}

func TestJSONLWriterStreams(t *testing.T) {
	var b bytes.Buffer
	jw := NewJSONLWriter(&b)
	for _, ev := range testEvents() {
		jw.Emit(ev)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	var whole bytes.Buffer
	if err := WriteJSONL(&whole, testEvents()); err != nil {
		t.Fatal(err)
	}
	if b.String() != whole.String() {
		t.Fatal("streaming writer output differs from WriteJSONL")
	}
}

func TestChromeTracePairsDurations(t *testing.T) {
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, testEvents()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	var stall, flow, meta bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "X" && ev.Name == "stall ("+CauseFrozenFlow+")":
			stall = true
			if ev.TS != 500_000 || ev.Dur != 500_000 {
				t.Fatalf("stall span ts=%d dur=%d, want 500000/500000", ev.TS, ev.Dur)
			}
		case ev.Ph == "X" && ev.Name == "flow 7":
			flow = true
			if ev.TS != 200_000 || ev.Dur != 700_000 {
				t.Fatalf("flow span ts=%d dur=%d, want 200000/700000", ev.TS, ev.Dur)
			}
		case ev.Ph == "M":
			meta = true
		}
	}
	if !stall || !flow || !meta {
		t.Fatalf("missing spans: stall=%v flow=%v meta=%v", stall, flow, meta)
	}
}

func TestBuildTimeline(t *testing.T) {
	tls := BuildTimeline(testEvents())
	if len(tls) != 1 {
		t.Fatalf("%d timelines, want 1", len(tls))
	}
	tl := tls[0]
	if tl.Peer != 1 || !tl.Finished || tl.StartupUS != 100_000 {
		t.Fatalf("timeline = %+v", tl)
	}
	if len(tl.Stalls) != 1 {
		t.Fatalf("%d stalls, want 1", len(tl.Stalls))
	}
	s := tl.Stalls[0]
	if s.StartUS != 500_000 || s.EndUS != 1_000_000 || s.Cause != CauseFrozenFlow {
		t.Fatalf("stall = %+v", s)
	}
	if got := Unattributed(tls); len(got) != 0 {
		t.Fatalf("unattributed = %v, want none", got)
	}
	if got := OpenStalls(tls); len(got) != 0 {
		t.Fatalf("open = %v, want none", got)
	}
}

func TestTimelineFlagsProblems(t *testing.T) {
	events := []Event{
		{At: time.Second, Peer: 2, Seg: -1, Cat: CatPlayer, Name: EvStallBegin},
	}
	tls := BuildTimeline(events)
	if got := Unattributed(tls); len(got) != 1 {
		t.Fatalf("unattributed = %v, want 1 entry", got)
	}
	if got := OpenStalls(tls); len(got) != 1 {
		t.Fatalf("open = %v, want 1 entry", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("blocks_rx")
	c.Inc()
	c.Add(4)
	// Same name resolves to the same counter.
	r.Counter("blocks_rx").Inc()
	g := r.Gauge("active")
	g.Set(3)
	g.Add(-1)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %v, want 2 stats", snap)
	}
	// Ordering contract: sorted by name, whatever the kind.
	if snap[0] != (Stat{Name: "active", Kind: "gauge", Value: 2}) {
		t.Fatalf("first stat = %+v", snap[0])
	}
	if snap[1] != (Stat{Name: "blocks_rx", Kind: "counter", Value: 6}) {
		t.Fatalf("second stat = %+v", snap[1])
	}
	var b bytes.Buffer
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "blocks_rx") {
		t.Fatalf("text output missing counter: %q", b.String())
	}
}

func TestNilRegistryHandsOutNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	g := r.Gauge("y")
	g.Set(9)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil-registry handles retained values")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
}
