package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic atomic counter. The zero Counter (from a nil
// Registry) is a no-op, so instrumented code never branches on whether
// metrics are enabled.
type Counter struct {
	v *int64
}

// Add increments the counter by delta.
func (c Counter) Add(delta int64) {
	if c.v != nil {
		atomic.AddInt64(c.v, delta)
	}
}

// Inc increments the counter by one.
func (c Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c Counter) Value() int64 {
	if c.v == nil {
		return 0
	}
	return atomic.LoadInt64(c.v)
}

// Gauge is an atomic instantaneous value. The zero Gauge is a no-op.
type Gauge struct {
	v *int64
}

// Set stores v.
func (g Gauge) Set(v int64) {
	if g.v != nil {
		atomic.StoreInt64(g.v, v)
	}
}

// Add adjusts the gauge by delta.
func (g Gauge) Add(delta int64) {
	if g.v != nil {
		atomic.AddInt64(g.v, delta)
	}
}

// Value returns the current value.
func (g Gauge) Value() int64 {
	if g.v == nil {
		return 0
	}
	return atomic.LoadInt64(g.v)
}

// Stat is one snapshot entry.
type Stat struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"` // "counter" or "gauge"
	Value int64  `json:"value"`
}

// Registry is a small named counter/gauge set for the real TCP stack.
// Lookup is locked; the returned handles update lock-free. A nil
// *Registry is valid and hands out no-op handles.
type Registry struct {
	mu       sync.Mutex // guards counters and gauges
	counters map[string]*int64
	gauges   map[string]*int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*int64{}, gauges: map[string]*int64{}}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) Counter {
	if r == nil {
		return Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.counters[name]
	if v == nil {
		v = new(int64)
		r.counters[name] = v
	}
	return Counter{v: v}
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) Gauge {
	if r == nil {
		return Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.gauges[name]
	if v == nil {
		v = new(int64)
		r.gauges[name] = v
	}
	return Gauge{v: v}
}

// Snapshot returns every stat, counters before gauges, each sorted by
// name so output is stable.
func (r *Registry) Snapshot() []Stat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Stat
	for name, v := range r.counters {
		out = append(out, Stat{Name: name, Kind: "counter", Value: atomic.LoadInt64(v)})
	}
	for name, v := range r.gauges {
		out = append(out, Stat{Name: name, Kind: "gauge", Value: atomic.LoadInt64(v)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind // "counter" < "gauge"
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteText renders the snapshot as aligned "name value" lines.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%-28s %12d\n", s.Name, s.Value); err != nil {
			return err
		}
	}
	return nil
}
