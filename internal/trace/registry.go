package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic atomic counter. The zero Counter (from a nil
// Registry) is a no-op, so instrumented code never branches on whether
// metrics are enabled.
type Counter struct {
	v *int64
}

// Add increments the counter by delta.
func (c Counter) Add(delta int64) {
	if c.v != nil {
		atomic.AddInt64(c.v, delta)
	}
}

// Inc increments the counter by one.
func (c Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c Counter) Value() int64 {
	if c.v == nil {
		return 0
	}
	return atomic.LoadInt64(c.v)
}

// Gauge is an atomic instantaneous value. The zero Gauge is a no-op.
type Gauge struct {
	v *int64
}

// Set stores v.
func (g Gauge) Set(v int64) {
	if g.v != nil {
		atomic.StoreInt64(g.v, v)
	}
}

// Add adjusts the gauge by delta.
func (g Gauge) Add(delta int64) {
	if g.v != nil {
		atomic.AddInt64(g.v, delta)
	}
}

// Value returns the current value.
func (g Gauge) Value() int64 {
	if g.v == nil {
		return 0
	}
	return atomic.LoadInt64(g.v)
}

// Stat is one snapshot entry.
type Stat struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"` // "counter" or "gauge"
	Value int64  `json:"value"`
}

// Registry is a named counter/gauge/histogram set shared by the real
// TCP stack and the emulation's metrics layer. Lookup is locked; the
// returned handles update lock-free. A nil *Registry is valid and hands
// out no-op handles.
//
// A metric name may carry Prometheus-style labels inline —
// `p2p_stall_seconds{cause="slow_flow"}` — and the text-exposition
// writer groups such series into one family. Names must be unique
// across kinds: registering the same name as both a counter and a
// histogram would render an invalid exposition.
type Registry struct {
	mu       sync.Mutex // guards counters, gauges, hists and help
	counters map[string]*int64
	gauges   map[string]*int64
	hists    map[string]*histState
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*int64{},
		gauges:   map[string]*int64{},
		hists:    map[string]*histState{},
		help:     map[string]string{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) Counter {
	if r == nil {
		return Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.counters[name]
	if v == nil {
		v = new(int64)
		r.counters[name] = v
	}
	return Counter{v: v}
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) Gauge {
	if r == nil {
		return Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.gauges[name]
	if v == nil {
		v = new(int64)
		r.gauges[name] = v
	}
	return Gauge{v: v}
}

// Histogram returns the named histogram recording raw int64 units
// (bytes, counts), creating it on first use. The name decides the
// family; inline labels are allowed.
func (r *Registry) Histogram(name string) Histogram { return r.histogram(name, 1) }

// SecondsHistogram returns the named histogram recording microseconds
// and exposing seconds (scale 1e-6). By convention its name ends in
// `_seconds`; feed it with ObserveDuration.
func (r *Registry) SecondsHistogram(name string) Histogram { return r.histogram(name, 1e-6) }

func (r *Registry) histogram(name string, scale float64) Histogram {
	if r == nil {
		return Histogram{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		// First registration fixes the scale; later lookups reuse it.
		h = &histState{scale: scale}
		r.hists[name] = h
	}
	return Histogram{h: h}
}

// SetHelp attaches a HELP string to a metric family (the base name,
// without labels) for the text exposition.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

// RegistrySnapshot is one coherent view of every metric in a registry.
// It is the single source for every rendering — the aligned text dump,
// the Prometheus exposition, and the periodic snapshot logger all
// derive from the same Snap() result, so their numbers cannot drift.
type RegistrySnapshot struct {
	// Stats holds counters and gauges sorted by name (kind breaks ties).
	Stats []Stat `json:"stats"`
	// Hists holds histograms sorted by name.
	Hists []HistStat `json:"hists"`
	// Help maps family base names to registered HELP strings.
	Help map[string]string `json:"help,omitempty"`
}

// Snap returns the full snapshot. Ordering contract: Stats is sorted by
// name (and by kind for equal names), Hists by name — byte-stable
// regardless of registration or map-iteration order. A nil registry
// yields an empty snapshot.
func (r *Registry) Snap() RegistrySnapshot {
	var snap RegistrySnapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, v := range r.counters {
		snap.Stats = append(snap.Stats, Stat{Name: name, Kind: "counter", Value: atomic.LoadInt64(v)})
	}
	for name, v := range r.gauges {
		snap.Stats = append(snap.Stats, Stat{Name: name, Kind: "gauge", Value: atomic.LoadInt64(v)})
	}
	sort.Slice(snap.Stats, func(i, j int) bool {
		if snap.Stats[i].Name != snap.Stats[j].Name {
			return snap.Stats[i].Name < snap.Stats[j].Name
		}
		return snap.Stats[i].Kind < snap.Stats[j].Kind
	})
	for name, h := range r.hists {
		snap.Hists = append(snap.Hists, h.snapshot(name))
	}
	sort.Slice(snap.Hists, func(i, j int) bool { return snap.Hists[i].Name < snap.Hists[j].Name })
	if len(r.help) > 0 {
		snap.Help = make(map[string]string, len(r.help))
		for k, v := range r.help {
			snap.Help[k] = v
		}
	}
	return snap
}

// Snapshot returns the scalar stats (counters and gauges) sorted by
// name. Kept for callers that predate histograms; it is a view of the
// same Snap() the renderers use.
func (r *Registry) Snapshot() []Stat {
	if r == nil {
		return nil
	}
	return r.Snap().Stats
}

// WriteText renders the snapshot as aligned "name value" lines:
// counters and gauges first, then one summary line per histogram with
// its count, sum, and interpolated p50/p95/p99 in display units. The
// output is byte-stable: it derives from Snap()'s sorted views and
// uses fixed float formatting.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snap()
	for _, s := range snap.Stats {
		if _, err := fmt.Fprintf(w, "%-28s %12d\n", s.Name, s.Value); err != nil {
			return err
		}
	}
	for _, h := range snap.Hists {
		if _, err := fmt.Fprintf(w, "%-28s count=%d sum=%s p50=%s p95=%s p99=%s\n",
			h.Name, h.Count, formatDisplay(h.SumScaled()),
			formatDisplay(h.Quantile(0.50)), formatDisplay(h.Quantile(0.95)),
			formatDisplay(h.Quantile(0.99))); err != nil {
			return err
		}
	}
	return nil
}
