package trace

import (
	"strings"
	"testing"
	"time"
)

// FuzzPromRoundTrip drives arbitrary metric values — counters, gauges,
// histograms, and the time-series-derived p2p_ts_* gauges — through
// WriteProm and back through ParsePromText, requiring every series to
// be recovered exactly. This is the property behind the "one snapshot
// path" contract: if the exposition writer and the strict mini-parser
// ever disagree on formatting (escaping, label blocks, float renders),
// the scrape smoke check would silently validate the wrong numbers.
func FuzzPromRoundTrip(f *testing.F) {
	f.Add(int64(1), []byte{1, 2, 3})
	f.Add(int64(42), []byte{})
	f.Add(int64(-7), []byte{255, 0, 128, 7, 9, 200, 31, 64})
	f.Add(int64(1<<62), []byte{0})
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		rnd := uint64(seed)
		next := func() uint64 { rnd = splitmixTrace(rnd); return rnd }

		reg := NewRegistry()
		cVal := int64(next() % (1 << 40))
		gVal := int64(next()%(1<<40)) - (1 << 39)
		reg.Counter("fz_requests_total").Add(cVal)
		reg.Gauge("fz_depth").Set(gVal)
		reg.SetHelp("fz_depth", `fuzzed gauge with "quotes" and \ backslash`)
		h := reg.Histogram("fz_bytes")
		var hSum int64
		for _, b := range raw {
			v := int64(b) << (b % 13)
			h.Observe(v)
			hSum += v
		}

		// Windowed telemetry published into the same registry, the way
		// swarm harnesses surface it on /metrics.
		ts := NewTimeSeries(TimeSeriesConfig{Window: time.Millisecond, MaxWindows: 32})
		ctr := ts.Counter(TSSegmentsCompleted)
		g := ts.Gauge(TSBufferOccupancyUS)
		ph := ts.Histogram(TSPoolTargetK)
		for _, b := range raw {
			at := time.Duration(b) * 3170 * time.Microsecond // exercises the clamp path
			ctr.Add(at, int64(b))
			g.Observe(at, int64(b)-128)
			ph.Observe(at, int64(b%9))
		}
		snap := ts.Snap()
		snap.PublishGauges(reg)

		var buf strings.Builder
		if err := reg.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		pm, err := ParsePromText(buf.String())
		if err != nil {
			t.Fatalf("round-trip parse: %v\nexposition:\n%s", err, buf.String())
		}

		check := func(name string, want float64) {
			t.Helper()
			got, ok := pm.Value(name)
			if !ok {
				t.Fatalf("series %s lost in round-trip\nexposition:\n%s", name, buf.String())
			}
			if got != want {
				t.Fatalf("series %s = %v after round-trip, want %v", name, got, want)
			}
		}
		check("fz_requests_total", float64(cVal))
		check("fz_depth", float64(gVal))
		check("fz_bytes_count", float64(len(raw)))
		check("fz_bytes_sum", float64(hSum))
		check(`fz_bytes_bucket{le="+Inf"}`, float64(len(raw)))
		for _, s := range snap.Series {
			check(`p2p_ts_windows{series="`+s.Name+`"}`, float64(len(s.Windows)))
			check(`p2p_ts_observations{series="`+s.Name+`"}`, float64(s.Total()))
			check(`p2p_ts_clamped{series="`+s.Name+`"}`, float64(s.Clamped))
		}
	})
}
