package trace

import (
	"reflect"
	"testing"
	"time"
)

func TestRingBoundsAndEviction(t *testing.T) {
	r := NewRing(3, nil)
	for i := 0; i < 5; i++ {
		r.Emit(Event{At: time.Duration(i), Peer: i, Seg: -1, Cat: CatPool, Name: EvPoolFill})
	}
	evs := r.Events()
	if len(evs) != 3 || r.Len() != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	var peers []int
	for _, ev := range evs {
		peers = append(peers, ev.Peer)
	}
	if !reflect.DeepEqual(peers, []int{2, 3, 4}) {
		t.Errorf("retained peers %v, want oldest-first [2 3 4]", peers)
	}
	counts := r.Counts()
	if counts.Sampled != 5 || counts.Rejected != 0 || counts.Dropped != 2 {
		t.Errorf("counts = %+v, want sampled=5 rejected=0 dropped=2", counts)
	}
}

func TestHashSamplerPureAndSeeded(t *testing.T) {
	s := NewHashSampler(42, 0.5, map[string]float64{CatPlayer: 1})
	ev := Event{At: time.Second, Peer: 7, Seg: 3, Cat: CatFlow, Name: EvFlowComplete}
	first := s.Keep(ev)
	for i := 0; i < 100; i++ {
		if s.Keep(ev) != first {
			t.Fatal("sampler verdict varies for an identical event")
		}
	}
	if !s.Keep(Event{Cat: CatPlayer, Name: EvStallBegin, Peer: 1, Seg: -1}) {
		t.Error("per-category rate 1 must keep every event")
	}
	if NewHashSampler(1, 0, nil).Keep(ev) {
		t.Error("rate 0 must reject")
	}
	if !NewHashSampler(1, 1, nil).Keep(ev) {
		t.Error("rate 1 must keep")
	}
	var nilSampler *HashSampler
	if !nilSampler.Keep(ev) {
		t.Error("nil sampler must keep everything")
	}

	// The kept fraction over many distinct events approximates the rate,
	// and a different seed picks a different subset of the same stream.
	kept, diff := 0, 0
	s2 := NewHashSampler(43, 0.5, nil)
	s3 := NewHashSampler(42, 0.5, nil)
	for peer := 0; peer < 200; peer++ {
		for seg := 0; seg < 50; seg++ {
			e := Event{Cat: CatFlow, Name: EvFlowComplete, Peer: peer, Seg: seg}
			k := s3.Keep(e)
			if k {
				kept++
			}
			if k != s2.Keep(e) {
				diff++
			}
		}
	}
	frac := float64(kept) / 10000
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("kept fraction %.3f at rate 0.5, want ~0.5", frac)
	}
	if diff == 0 {
		t.Error("two seeds agreed on every event; sampling is not seed-dependent")
	}
}

func TestRingWithSampler(t *testing.T) {
	r := NewRing(10000, NewHashSampler(7, 0.25, nil))
	total := 0
	for peer := 0; peer < 100; peer++ {
		for seg := 0; seg < 40; seg++ {
			r.Emit(Event{Cat: CatFlow, Name: EvFlowActivate, Peer: peer, Seg: seg})
			total++
		}
	}
	c := r.Counts()
	if c.Sampled+c.Rejected != int64(total) {
		t.Fatalf("sampled %d + rejected %d != emitted %d", c.Sampled, c.Rejected, total)
	}
	if c.Dropped != 0 {
		t.Errorf("dropped %d with spare capacity, want 0", c.Dropped)
	}
	frac := float64(c.Sampled) / float64(total)
	if frac < 0.18 || frac > 0.32 {
		t.Errorf("admitted fraction %.3f at rate 0.25, want ~0.25", frac)
	}
	if r.Len() != int(c.Sampled) {
		t.Errorf("ring holds %d events, want %d admitted", r.Len(), c.Sampled)
	}
}
