package trace

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram layout is fixed and shared by every histogram in the
// process: HistBuckets log-spaced buckets whose upper bounds are the
// powers of two 2^0 .. 2^(HistBuckets-1) in raw units, plus an implicit
// +Inf overflow bucket. Power-of-two bounds are exact in float64, so the
// rendered bucket boundaries — and therefore the Prometheus text
// exposition — are byte-stable across platforms and runs. 48 doublings
// cover raw values up to ~1.4e14: microseconds out to 4.5 years and
// bytes out to 256 TB, far beyond anything the stack records.
const (
	// HistBuckets is the number of finite buckets.
	HistBuckets = 48
	// histSlots adds the +Inf overflow bucket.
	histSlots = HistBuckets + 1
)

// HistBucketUpper returns the upper bound (inclusive) of finite bucket i
// in raw units. Bucket 0 holds values <= 1; bucket i holds values in
// (2^(i-1), 2^i].
func HistBucketUpper(i int) int64 { return 1 << uint(i) }

// histBucketIndex maps a raw observation to its bucket slot. Values
// below 1 (including negatives, which callers should not produce but
// which must not corrupt the layout) land in bucket 0; values above the
// last finite bound land in the +Inf slot.
//
//lint:hotpath runs on every observation
func histBucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	// For v in (2^(i-1), 2^i], bits.Len64(v-1) = i.
	i := bits.Len64(uint64(v - 1))
	if i >= HistBuckets {
		return HistBuckets // +Inf slot
	}
	return i
}

// histState is the shared storage behind Histogram handles. All fields
// are updated with atomic operations only: recording takes no lock, and
// because every field is an integer (exact addition commutes), totals
// are identical whatever order concurrent observers interleave in.
type histState struct {
	// scale converts raw units to display units at exposition time
	// (1e-6 for histograms that record microseconds and expose seconds).
	scale float64
	// counts[i] is the number of observations in bucket slot i
	// (non-cumulative; slot HistBuckets is the +Inf overflow).
	counts [histSlots]int64
	count  int64
	sum    int64 // exact sum of raw observations
}

// Histogram is a fixed-bucket log-spaced histogram handle. The zero
// Histogram (from a nil Registry) is a no-op, mirroring Counter and
// Gauge, so instrumented code never branches on whether metrics are
// enabled. Recording is lock-free and allocation-free.
type Histogram struct {
	h *histState
}

// Observe records one raw observation.
//
//lint:hotpath called per QoE event; the benchmarks assert 0 allocs/op
func (h Histogram) Observe(v int64) {
	if h.h == nil {
		return
	}
	atomic.AddInt64(&h.h.counts[histBucketIndex(v)], 1)
	atomic.AddInt64(&h.h.count, 1)
	atomic.AddInt64(&h.h.sum, v)
}

// ObserveDuration records a duration in microseconds — the raw unit of
// every *_seconds histogram (their scale of 1e-6 converts back to
// seconds at exposition).
//
//lint:hotpath called per QoE event; the benchmarks assert 0 allocs/op
func (h Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Microseconds()) }

// Count returns the number of observations.
func (h Histogram) Count() int64 {
	if h.h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.h.count)
}

// Sum returns the exact sum of raw observations.
func (h Histogram) Sum() int64 {
	if h.h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.h.sum)
}

// snapshot copies the live state into a HistStat.
func (h *histState) snapshot(name string) HistStat {
	st := HistStat{Name: name, Scale: h.scale}
	for i := range h.counts {
		st.Counts[i] = atomic.LoadInt64(&h.counts[i])
	}
	st.Count = atomic.LoadInt64(&h.count)
	st.Sum = atomic.LoadInt64(&h.sum)
	return st
}

// HistStat is one histogram's snapshot: an immutable copy of the bucket
// counts plus the exact count and raw-unit sum.
type HistStat struct {
	Name  string  `json:"name"`
	Scale float64 `json:"scale"`
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	// Counts holds per-bucket (non-cumulative) observation counts; the
	// last slot is the +Inf overflow bucket.
	Counts [histSlots]int64 `json:"counts"`
}

// SumScaled returns the sum in display units.
func (s HistStat) SumScaled() float64 { return float64(s.Sum) * s.scaleOr1() }

func (s HistStat) scaleOr1() float64 {
	if s.Scale > 0 {
		return s.Scale
	}
	return 1
}

// UpperScaled returns finite bucket i's upper bound in display units.
func (s HistStat) UpperScaled(i int) float64 {
	return float64(HistBucketUpper(i)) * s.scaleOr1()
}

// Quantile estimates the q-quantile (0 <= q <= 1) in display units by
// locating the bucket containing the target rank and interpolating
// linearly inside it. The estimate is a pure function of the snapshot,
// so repeated calls — and runs with identical recordings — agree bit
// for bit. Returns 0 when the histogram is empty.
func (s HistStat) Quantile(q float64) float64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum+1e-9 < rank {
			continue
		}
		// Target rank falls in bucket i: interpolate between the bucket's
		// bounds by the rank's position within it.
		var lo, hi float64
		switch {
		case i == 0:
			lo, hi = 0, 1
		case i >= HistBuckets:
			// Overflow bucket: no finite upper bound; report the lower one.
			return float64(HistBucketUpper(HistBuckets-1)) * s.scaleOr1()
		default:
			lo, hi = float64(HistBucketUpper(i-1)), float64(HistBucketUpper(i))
		}
		frac := (rank - prev) / float64(c)
		return (lo + (hi-lo)*frac) * s.scaleOr1()
	}
	// Unreachable when Count matches the bucket totals; be defensive.
	return float64(HistBucketUpper(HistBuckets-1)) * s.scaleOr1()
}
