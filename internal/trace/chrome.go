package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// consumed by about:tracing and Perfetto). Each emulated/real peer maps
// to a thread (tid) of one process, stalls and flows become duration
// ("X") events, and everything else becomes a thread-scoped instant.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    int64          `json:"ts"` // microseconds
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeArgs converts an Event's argument list. encoding/json emits map
// keys sorted, so the output is deterministic.
func chromeArgs(ev Event) map[string]any {
	if len(ev.Args) == 0 {
		return nil
	}
	m := make(map[string]any, len(ev.Args))
	for _, a := range ev.Args {
		switch a.Kind {
		case ArgInt:
			m[a.Key] = a.Int
		case ArgFloat:
			m[a.Key] = a.Float
		case ArgStr:
			m[a.Key] = a.Str
		}
	}
	return m
}

// WriteChromeTrace renders events as a Chrome trace-event JSON object.
// Stall begin/end pairs per peer and flow activate/complete (or cancel)
// pairs per flow id become duration events; all other records become
// instants on the emitting peer's timeline.
func WriteChromeTrace(w io.Writer, events []Event) error {
	var out []chromeEvent
	peers := map[int]bool{}
	type openStall struct {
		ts    int64
		cause string
		args  map[string]any
	}
	type openFlow struct {
		ts   int64
		peer int
		args map[string]any
	}
	stalls := map[int]*openStall{}
	flows := map[int64]*openFlow{}

	for _, ev := range events {
		if ev.Peer >= 0 {
			peers[ev.Peer] = true
		}
		ts := ev.At.Microseconds()
		switch ev.Name {
		case EvStallBegin:
			stalls[ev.Peer] = &openStall{ts: ts, args: chromeArgs(ev)}
			continue
		case EvStallCause:
			if s := stalls[ev.Peer]; s != nil {
				s.cause = ev.ArgStr("cause", "")
				if s.args == nil {
					s.args = map[string]any{}
				}
				for k, v := range chromeArgs(ev) {
					s.args[k] = v
				}
			}
			continue
		case EvStallEnd:
			if s := stalls[ev.Peer]; s != nil {
				delete(stalls, ev.Peer)
				name := "stall"
				if s.cause != "" {
					name = "stall (" + s.cause + ")"
				}
				out = append(out, chromeEvent{
					Name: name, Cat: CatPlayer, Ph: "X",
					TS: s.ts, Dur: maxInt64(ts-s.ts, 1),
					TID: ev.Peer, Args: s.args,
				})
			}
			continue
		case EvFlowActivate:
			if id, ok := ev.Arg("flow"); ok {
				flows[id.Int] = &openFlow{ts: ts, peer: ev.Peer, args: chromeArgs(ev)}
				continue
			}
		case EvFlowComplete, EvFlowCancel:
			if id, ok := ev.Arg("flow"); ok {
				if f := flows[id.Int]; f != nil {
					delete(flows, id.Int)
					name := fmt.Sprintf("flow %d", id.Int)
					if ev.Name == EvFlowCancel {
						name += " (cancelled)"
					}
					out = append(out, chromeEvent{
						Name: name, Cat: CatFlow, Ph: "X",
						TS: f.ts, Dur: maxInt64(ts-f.ts, 1),
						TID: f.peer, Args: f.args,
					})
					continue
				}
			}
		}
		out = append(out, chromeEvent{
			Name: ev.Name, Cat: ev.Cat, Ph: "i", TS: ts,
			TID: ev.Peer, Scope: "t", Args: chromeArgs(ev),
		})
	}

	// Name each peer's timeline. Metadata events go first.
	var ids []int
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	meta := make([]chromeEvent, 0, len(ids))
	for _, id := range ids {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", TID: id,
			Args: map[string]any{"name": fmt.Sprintf("peer %d", id)},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: append(meta, out...), DisplayTimeUnit: "ms"})
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
