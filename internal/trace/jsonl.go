package trace

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// AppendJSONL appends one event as a single JSON line (newline included)
// to dst and returns the extended slice. The encoding is hand-rolled so
// the hot path allocates nothing beyond the destination slice: no
// reflection, no intermediate maps. Fields with -1 sentinels (peer, seg)
// are omitted, as is an empty args object. Argument order is the
// emission order, which is itself deterministic.
func AppendJSONL(dst []byte, ev Event) []byte {
	dst = append(dst, `{"t_us":`...)
	dst = strconv.AppendInt(dst, ev.At.Microseconds(), 10)
	dst = append(dst, `,"cat":`...)
	dst = strconv.AppendQuote(dst, ev.Cat)
	dst = append(dst, `,"name":`...)
	dst = strconv.AppendQuote(dst, ev.Name)
	if ev.Peer >= 0 {
		dst = append(dst, `,"peer":`...)
		dst = strconv.AppendInt(dst, int64(ev.Peer), 10)
	}
	if ev.Seg >= 0 {
		dst = append(dst, `,"seg":`...)
		dst = strconv.AppendInt(dst, int64(ev.Seg), 10)
	}
	if len(ev.Args) > 0 {
		dst = append(dst, `,"args":{`...)
		for i, a := range ev.Args {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendQuote(dst, a.Key)
			dst = append(dst, ':')
			switch a.Kind {
			case ArgInt:
				dst = strconv.AppendInt(dst, a.Int, 10)
			case ArgFloat:
				dst = strconv.AppendFloat(dst, a.Float, 'g', -1, 64)
			case ArgStr:
				dst = strconv.AppendQuote(dst, a.Str)
			}
		}
		dst = append(dst, '}')
	}
	dst = append(dst, '}', '\n')
	return dst
}

// WriteJSONL writes events as JSON Lines.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	var line []byte
	for _, ev := range events {
		line = AppendJSONL(line[:0], ev)
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// JSONLWriter is a streaming Sink that encodes each event as one JSON
// line. Writes are serialized; the first write error is latched and
// surfaced by Close (events after an error are dropped).
type JSONLWriter struct {
	mu   sync.Mutex // guards bw, line and err
	bw   *bufio.Writer
	line []byte
	err  error
}

// NewJSONLWriter returns a streaming JSONL sink over w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{bw: bufio.NewWriter(w)}
}

// Emit writes one event line.
func (jw *JSONLWriter) Emit(ev Event) {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err != nil {
		return
	}
	jw.line = AppendJSONL(jw.line[:0], ev)
	_, jw.err = jw.bw.Write(jw.line)
}

// Close flushes buffered lines and returns the first error seen.
func (jw *JSONLWriter) Close() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err != nil {
		return jw.err
	}
	jw.err = jw.bw.Flush()
	return jw.err
}
