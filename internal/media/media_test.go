package media

import (
	"math/rand"
	"testing"
	"time"
)

func mustSynthesize(t *testing.T, cfg EncoderConfig, d time.Duration, seed int64) *Video {
	t.Helper()
	v, err := Synthesize(cfg, d, seed)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	return v
}

func TestFrameTypeString(t *testing.T) {
	tests := []struct {
		t    FrameType
		want string
	}{
		{FrameI, "I"},
		{FrameP, "P"},
		{FrameB, "B"},
		{FrameType(7), "FrameType(7)"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("FrameType(%d).String() = %q, want %q", tt.t, got, tt.want)
		}
	}
}

func TestFrameTypeValid(t *testing.T) {
	if !FrameI.Valid() || !FrameP.Valid() || !FrameB.Valid() {
		t.Error("defined frame types should be valid")
	}
	if FrameType(3).Valid() {
		t.Error("FrameType(3) should be invalid")
	}
}

func TestGOPValidate(t *testing.T) {
	fd := time.Second / 24
	tests := []struct {
		name    string
		frames  []Frame
		wantErr bool
	}{
		{"empty", nil, true},
		{"starts with P", []Frame{{Type: FrameP, Duration: fd}}, true},
		{"interior I", []Frame{{Type: FrameI, Duration: fd}, {Type: FrameI, Duration: fd}}, true},
		{"ok single I", []Frame{{Type: FrameI, Duration: fd}}, false},
		{"ok IPB", []Frame{{Type: FrameI, Duration: fd}, {Type: FrameP, Duration: fd}, {Type: FrameB, Duration: fd}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := GOP{Frames: tt.frames}.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSynthesizeValid(t *testing.T) {
	v := mustSynthesize(t, DefaultEncoderConfig(), 2*time.Minute, 1)
	if err := v.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := DefaultEncoderConfig()
	a := mustSynthesize(t, cfg, 30*time.Second, 42)
	b := mustSynthesize(t, cfg, 30*time.Second, 42)
	if a.TotalBytes() != b.TotalBytes() || a.FrameCount() != b.FrameCount() || len(a.GOPs) != len(b.GOPs) {
		t.Fatalf("same seed produced different clips: %d/%d bytes, %d/%d frames",
			a.TotalBytes(), b.TotalBytes(), a.FrameCount(), b.FrameCount())
	}
	c := mustSynthesize(t, cfg, 30*time.Second, 43)
	same := len(a.GOPs) == len(c.GOPs)
	if same {
		for i := range a.GOPs {
			if a.GOPs[i].Duration() != c.GOPs[i].Duration() {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical GOP structure; RNG unused?")
	}
}

func TestSynthesizeBitrate(t *testing.T) {
	cfg := DefaultEncoderConfig()
	v := mustSynthesize(t, cfg, 2*time.Minute, 7)
	want := float64(cfg.BytesPerSecond) * v.Duration().Seconds()
	got := float64(v.TotalBytes())
	if ratio := got / want; ratio < 0.99 || ratio > 1.01 {
		t.Errorf("total bytes %v, want within 1%% of %v (ratio %.4f)", got, want, ratio)
	}
}

func TestSynthesizeGOPDurationSpread(t *testing.T) {
	// The paper's GOP-splicing argument needs both very short and very long
	// GOPs. Check the synthetic clip exhibits that spread.
	v := mustSynthesize(t, DefaultEncoderConfig(), 2*time.Minute, 3)
	var min, max time.Duration = time.Hour, 0
	for _, d := range v.GOPDurations() {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min > 2*time.Second {
		t.Errorf("shortest GOP %v, want <= 2s (high-motion scenes)", min)
	}
	if max < 6*time.Second {
		t.Errorf("longest GOP %v, want >= 6s (stationary scenes)", max)
	}
}

func TestSynthesizeIFrameDominance(t *testing.T) {
	v := mustSynthesize(t, DefaultEncoderConfig(), time.Minute, 5)
	for gi, g := range v.GOPs {
		if len(g.Frames) < 6 {
			continue // tiny GOPs may not have room for the pattern
		}
		iSize := g.IFrameBytes()
		var pSum, pN int64
		for _, f := range g.Frames[1:] {
			if f.Type == FrameP {
				pSum += f.Bytes
				pN++
			}
		}
		if pN == 0 {
			continue
		}
		if avgP := pSum / pN; iSize < 3*avgP {
			t.Errorf("GOP %d: I frame %dB not >> P avg %dB", gi, iSize, avgP)
		}
	}
}

func TestSynthesizeErrors(t *testing.T) {
	cfg := DefaultEncoderConfig()
	tests := []struct {
		name string
		mut  func(*EncoderConfig)
		dur  time.Duration
	}{
		{"zero fps", func(c *EncoderConfig) { c.FPS = 0 }, time.Minute},
		{"zero rate", func(c *EncoderConfig) { c.BytesPerSecond = 0 }, time.Minute},
		{"bad gop bounds", func(c *EncoderConfig) { c.MinGOP = 2 * time.Second; c.MaxGOP = time.Second }, time.Minute},
		{"negative bframes", func(c *EncoderConfig) { c.BFrames = -1 }, time.Minute},
		{"iweight<1", func(c *EncoderConfig) { c.IWeight = 0.5 }, time.Minute},
		{"bweight>1", func(c *EncoderConfig) { c.BWeight = 1.5 }, time.Minute},
		{"zero duration", func(c *EncoderConfig) {}, 0},
		{"bad scenes", func(c *EncoderConfig) { c.Scenes.MeanSceneDuration = 0 }, time.Minute},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := cfg
			tt.mut(&c)
			if _, err := Synthesize(c, tt.dur, 1); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestGOPAt(t *testing.T) {
	v := mustSynthesize(t, DefaultEncoderConfig(), time.Minute, 11)
	for gi, g := range v.GOPs {
		mid := g.Start() + g.Duration()/2
		got, err := v.GOPAt(mid)
		if err != nil {
			t.Fatalf("GOPAt(%v): %v", mid, err)
		}
		if got != gi {
			t.Errorf("GOPAt(%v) = %d, want %d", mid, got, gi)
		}
	}
	if _, err := v.GOPAt(-time.Second); err == nil {
		t.Error("GOPAt(-1s): want error")
	}
	if _, err := v.GOPAt(v.Duration()); err == nil {
		t.Error("GOPAt(end): want error")
	}
}

func TestSceneModelCoversDuration(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	total := 90 * time.Second
	scenes, err := DefaultSceneModel().Generate(rng, total)
	if err != nil {
		t.Fatal(err)
	}
	var at time.Duration
	for i, s := range scenes {
		if s.Start != at {
			t.Fatalf("scene %d starts at %v, want %v", i, s.Start, at)
		}
		if s.Duration <= 0 {
			t.Fatalf("scene %d has non-positive duration", i)
		}
		if s.Motion < 0 || s.Motion > 1 {
			t.Fatalf("scene %d motion %v outside [0,1]", i, s.Motion)
		}
		at += s.Duration
	}
	if at != total {
		t.Fatalf("scenes cover %v, want %v", at, total)
	}
}

func TestSceneModelErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := SceneModel{MeanSceneDuration: 0, MinSceneDuration: time.Second}
	if _, err := bad.Generate(rng, time.Minute); err == nil {
		t.Error("zero mean: want error")
	}
	ok := DefaultSceneModel()
	if _, err := ok.Generate(rng, 0); err == nil {
		t.Error("zero total: want error")
	}
	neg := DefaultSceneModel()
	neg.SceneSigma = -1
	if _, err := neg.Generate(rng, time.Minute); err == nil {
		t.Error("negative sigma: want error")
	}
}

func TestVideoAccessors(t *testing.T) {
	v := mustSynthesize(t, DefaultEncoderConfig(), 10*time.Second, 2)
	frames := v.Frames()
	if len(frames) != v.FrameCount() {
		t.Errorf("Frames() len %d, want %d", len(frames), v.FrameCount())
	}
	if v.MaxGOPBytes() <= 0 {
		t.Error("MaxGOPBytes should be positive")
	}
	if v.MeanIFrameBytes() <= 0 {
		t.Error("MeanIFrameBytes should be positive")
	}
	var sum int64
	for _, f := range frames {
		sum += f.Bytes
	}
	if sum != v.TotalBytes() {
		t.Errorf("frame byte sum %d != TotalBytes %d", sum, v.TotalBytes())
	}
	// End of last frame equals clip duration.
	last := frames[len(frames)-1]
	if last.End() != v.Duration() {
		t.Errorf("last frame ends at %v, want %v", last.End(), v.Duration())
	}
}

func TestEmptyVideoHelpers(t *testing.T) {
	var v Video
	if v.MaxGOPBytes() != 0 || v.MeanIFrameBytes() != 0 || v.TotalBytes() != 0 {
		t.Error("empty video helpers should return 0")
	}
	if err := v.Validate(); err == nil {
		t.Error("empty video should fail validation")
	}
	var g GOP
	if g.Start() != 0 || g.IFrameBytes() != 0 {
		t.Error("empty GOP helpers should return 0")
	}
}

func TestFramePatternWithinGOP(t *testing.T) {
	cfg := DefaultEncoderConfig()
	cfg.BFrames = 2
	v := mustSynthesize(t, cfg, 20*time.Second, 21)
	for gi, g := range v.GOPs {
		sinceRef := 0
		for fi, f := range g.Frames {
			switch {
			case fi == 0:
				if f.Type != FrameI {
					t.Fatalf("GOP %d frame 0 is %s", gi, f.Type)
				}
			case f.Type == FrameB:
				sinceRef++
				if sinceRef > cfg.BFrames {
					t.Fatalf("GOP %d frame %d: %d consecutive B frames", gi, fi, sinceRef)
				}
			case f.Type == FrameP:
				sinceRef = 0
			default:
				t.Fatalf("GOP %d frame %d: unexpected %s", gi, fi, f.Type)
			}
		}
	}
}

func TestNoBFramesMode(t *testing.T) {
	cfg := DefaultEncoderConfig()
	cfg.BFrames = 0
	v := mustSynthesize(t, cfg, 10*time.Second, 3)
	for _, f := range v.Frames() {
		if f.Type == FrameB {
			t.Fatal("BFrames=0 still produced B frames")
		}
	}
}

func TestSceneCutsForceIFrames(t *testing.T) {
	v := mustSynthesize(t, DefaultEncoderConfig(), time.Minute, 17)
	// Regenerate the same scene sequence the encoder used.
	rng := rand.New(rand.NewSource(17))
	scenes, err := v.Config.Scenes.Generate(rng, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	frameDur := time.Second / time.Duration(v.Config.FPS)
	starts := make(map[time.Duration]bool)
	for _, g := range v.GOPs {
		starts[g.Start()] = true
	}
	for _, sc := range scenes[1:] {
		// The first frame at or after the scene cut must start a GOP.
		frame := ((sc.Start + frameDur - 1) / frameDur) * frameDur
		if frame >= v.Duration() {
			continue
		}
		if !starts[frame] {
			t.Errorf("scene cut at %v: no GOP starts at frame time %v", sc.Start, frame)
		}
	}
}
