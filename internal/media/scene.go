package media

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Scene is a contiguous run of video with homogeneous visual activity.
// Scene boundaries force I frames (scene cuts), so the scene model is what
// produces the variable — and heavy-tailed — GOP durations the paper
// attributes to "constantly changing scenery" versus "stationary scenes".
type Scene struct {
	// Start is the presentation time at which the scene begins.
	Start time.Duration
	// Duration is the length of the scene.
	Duration time.Duration
	// Motion is the visual activity level in [0, 1]. High motion means
	// frequent intra refreshes (short GOPs) and larger P/B frames relative
	// to the I frame; low motion means long GOPs.
	Motion float64
}

// SceneModel generates a scene sequence for a clip.
type SceneModel struct {
	// MeanSceneDuration is the mean of the (log-normal) scene length
	// distribution. Must be positive.
	MeanSceneDuration time.Duration
	// SceneSigma is the log-normal shape parameter; larger values give a
	// heavier tail (occasional very long, stationary scenes). Typical: 0.8.
	SceneSigma float64
	// MinSceneDuration clamps the shortest scene. Must be positive.
	MinSceneDuration time.Duration
}

// DefaultSceneModel returns a model tuned to produce the GOP-duration spread
// described in the paper: mostly short scenes with an occasional long,
// near-stationary scene that yields a very large GOP.
func DefaultSceneModel() SceneModel {
	return SceneModel{
		MeanSceneDuration: 4 * time.Second,
		SceneSigma:        0.9,
		MinSceneDuration:  400 * time.Millisecond,
	}
}

// Validate reports whether the model parameters are usable.
func (m SceneModel) Validate() error {
	if m.MeanSceneDuration <= 0 {
		return fmt.Errorf("media: MeanSceneDuration must be positive, got %v", m.MeanSceneDuration)
	}
	if m.MinSceneDuration <= 0 {
		return fmt.Errorf("media: MinSceneDuration must be positive, got %v", m.MinSceneDuration)
	}
	if m.SceneSigma < 0 {
		return fmt.Errorf("media: SceneSigma must be non-negative, got %v", m.SceneSigma)
	}
	return nil
}

// Generate produces scenes covering exactly total duration. The final scene
// is truncated to fit. Generation is deterministic for a given rng state.
func (m SceneModel) Generate(rng *rand.Rand, total time.Duration) ([]Scene, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if total <= 0 {
		return nil, fmt.Errorf("media: total duration must be positive, got %v", total)
	}
	// Log-normal with mean MeanSceneDuration: mu = ln(mean) - sigma^2/2.
	mu := math.Log(m.MeanSceneDuration.Seconds()) - m.SceneSigma*m.SceneSigma/2
	var scenes []Scene
	var at time.Duration
	for at < total {
		secs := math.Exp(mu + m.SceneSigma*rng.NormFloat64())
		d := time.Duration(secs * float64(time.Second))
		if d < m.MinSceneDuration {
			d = m.MinSceneDuration
		}
		if at+d > total {
			d = total - at
		}
		// Low-motion scenes tend to be the long ones: couple motion to
		// (inverse) scene length with jitter, clamped to [0.02, 0.95].
		// Long stationary scenes push motion near zero, which is what
		// produces the paper's "very long GOP" monsters.
		motion := 0.85 - 0.32*math.Log1p(d.Seconds()) + 0.15*rng.NormFloat64()
		motion = math.Max(0.02, math.Min(0.95, motion))
		scenes = append(scenes, Scene{Start: at, Duration: d, Motion: motion})
		at += d
	}
	return scenes, nil
}
