package media

import (
	"fmt"
	"time"
)

// Video is a synthesized clip: a sequence of closed GOPs.
type Video struct {
	// Config is the encoder configuration that produced the clip.
	Config EncoderConfig
	// ClipDuration is the exact display duration (totalFrames / fps).
	ClipDuration time.Duration
	// Seed is the synthesis seed, kept for reproducibility metadata.
	Seed int64
	// GOPs holds the closed GOPs in display order.
	GOPs []GOP
}

// Duration returns the display duration of the clip.
func (v *Video) Duration() time.Duration { return v.ClipDuration }

// TotalBytes returns the coded size of the whole clip.
func (v *Video) TotalBytes() int64 {
	var n int64
	for _, g := range v.GOPs {
		n += g.Bytes()
	}
	return n
}

// FrameCount returns the number of frames in the clip.
func (v *Video) FrameCount() int {
	var n int
	for _, g := range v.GOPs {
		n += len(g.Frames)
	}
	return n
}

// Frames returns all frames in display order. The returned slice is freshly
// allocated; mutating it does not affect the video.
func (v *Video) Frames() []Frame {
	out := make([]Frame, 0, v.FrameCount())
	for _, g := range v.GOPs {
		out = append(out, g.Frames...)
	}
	return out
}

// GOPDurations returns the duration of each GOP in order.
func (v *Video) GOPDurations() []time.Duration {
	out := make([]time.Duration, len(v.GOPs))
	for i, g := range v.GOPs {
		out[i] = g.Duration()
	}
	return out
}

// MaxGOPBytes returns the size of the largest GOP. It returns 0 for an
// empty video.
func (v *Video) MaxGOPBytes() int64 {
	var m int64
	for _, g := range v.GOPs {
		if b := g.Bytes(); b > m {
			m = b
		}
	}
	return m
}

// GOPAt returns the index of the GOP whose display interval contains pts.
func (v *Video) GOPAt(pts time.Duration) (int, error) {
	if pts < 0 || pts >= v.ClipDuration {
		return 0, fmt.Errorf("media: pts %v outside clip [0, %v)", pts, v.ClipDuration)
	}
	// GOPs are ordered and contiguous; binary search by start time.
	lo, hi := 0, len(v.GOPs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if v.GOPs[mid].Start() <= pts {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}

// Validate checks structural invariants: contiguous, valid closed GOPs whose
// frames cover [0, ClipDuration) exactly.
func (v *Video) Validate() error {
	if len(v.GOPs) == 0 {
		return fmt.Errorf("media: video has no GOPs")
	}
	var at time.Duration
	idx := 0
	for gi, g := range v.GOPs {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("media: GOP %d: %w", gi, err)
		}
		for _, f := range g.Frames {
			if f.PTS != at {
				return fmt.Errorf("media: GOP %d frame %d: PTS %v, want %v", gi, f.Index, f.PTS, at)
			}
			if f.Index != idx {
				return fmt.Errorf("media: GOP %d: frame index %d, want %d", gi, f.Index, idx)
			}
			if f.Bytes <= 0 {
				return fmt.Errorf("media: GOP %d frame %d: non-positive size %d", gi, f.Index, f.Bytes)
			}
			at += f.Duration
			idx++
		}
	}
	if at != v.ClipDuration {
		return fmt.Errorf("media: frames cover %v, want %v", at, v.ClipDuration)
	}
	return nil
}

// MeanIFrameBytes returns the average I-frame size across GOPs, used by the
// duration splicer to cost inserted keyframes when a source GOP is split.
func (v *Video) MeanIFrameBytes() int64 {
	if len(v.GOPs) == 0 {
		return 0
	}
	var sum int64
	for _, g := range v.GOPs {
		sum += g.IFrameBytes()
	}
	return sum / int64(len(v.GOPs))
}
