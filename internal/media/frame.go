// Package media models a synthetic MPEG-4-like elementary video stream.
//
// The paper's splicing experiments depend on two properties of real MPEG-4
// video: the distribution of GOP (Group of Pictures) durations, which a
// scene/motion model drives, and the relative sizes of I, P and B frames,
// which determine the byte overhead of duration-based splicing. This package
// synthesizes streams that reproduce both properties deterministically from a
// seed, replacing the real video + Xuggler/FFmpeg stack used in the paper.
package media

import (
	"fmt"
	"time"
)

// FrameType identifies the coding type of a video frame.
type FrameType uint8

const (
	// FrameI is an intra-coded frame, decodable independently.
	FrameI FrameType = iota
	// FrameP is a predictive frame, dependent on the preceding I/P frame.
	FrameP
	// FrameB is a bidirectional frame, dependent on surrounding frames.
	FrameB
)

// String returns the conventional single-letter name of the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	case FrameB:
		return "B"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// Valid reports whether t is one of the defined frame types.
func (t FrameType) Valid() bool {
	return t <= FrameB
}

// Frame is one coded picture in the elementary stream.
type Frame struct {
	// Index is the display-order position of the frame in the stream.
	Index int
	// Type is the coding type.
	Type FrameType
	// Bytes is the coded size of the frame.
	Bytes int64
	// PTS is the presentation timestamp relative to stream start.
	PTS time.Duration
	// Duration is the display duration of the frame (1/fps).
	Duration time.Duration
}

// End returns the presentation time at which the frame stops displaying.
func (f Frame) End() time.Duration {
	return f.PTS + f.Duration
}

// GOP is a closed Group of Pictures: an I frame followed by P/B frames.
// A closed GOP is independently decodable, so it is the smallest unit the
// GOP-based splicer may emit.
type GOP struct {
	// Frames holds the member frames in display order. Frames[0] is the I frame.
	Frames []Frame
}

// Duration returns the total display duration of the GOP.
func (g GOP) Duration() time.Duration {
	var d time.Duration
	for _, f := range g.Frames {
		d += f.Duration
	}
	return d
}

// Bytes returns the total coded size of the GOP.
func (g GOP) Bytes() int64 {
	var n int64
	for _, f := range g.Frames {
		n += f.Bytes
	}
	return n
}

// Start returns the presentation timestamp of the first frame.
// It returns 0 for an empty GOP.
func (g GOP) Start() time.Duration {
	if len(g.Frames) == 0 {
		return 0
	}
	return g.Frames[0].PTS
}

// IFrameBytes returns the size of the leading I frame, or 0 for an empty GOP.
func (g GOP) IFrameBytes() int64 {
	if len(g.Frames) == 0 {
		return 0
	}
	return g.Frames[0].Bytes
}

// Validate checks the closed-GOP structural invariants.
func (g GOP) Validate() error {
	if len(g.Frames) == 0 {
		return fmt.Errorf("media: empty GOP")
	}
	if g.Frames[0].Type != FrameI {
		return fmt.Errorf("media: GOP starts with %s frame, want I", g.Frames[0].Type)
	}
	for i, f := range g.Frames[1:] {
		if f.Type == FrameI {
			return fmt.Errorf("media: interior I frame at offset %d", i+1)
		}
		if !f.Type.Valid() {
			return fmt.Errorf("media: invalid frame type at offset %d", i+1)
		}
	}
	return nil
}
