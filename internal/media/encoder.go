package media

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// EncoderConfig describes the synthetic encoder.
//
// The defaults model the clip used in the paper's evaluation: a 1 Mbps
// (128 kB/s) MPEG-4 stream. Frame-size weights follow the conventional
// MPEG-4 pattern where an I frame is roughly an order of magnitude larger
// than a P frame and B frames are roughly half a P frame.
type EncoderConfig struct {
	// FPS is the frame rate. Must be positive.
	FPS int
	// BytesPerSecond is the target (CBR) coded rate in bytes per second.
	BytesPerSecond int64
	// MinGOP and MaxGOP bound the keyframe interval. High-motion scenes use
	// intervals near MinGOP; stationary scenes approach MaxGOP, producing
	// the "very long GOP" case the paper describes.
	MinGOP time.Duration
	MaxGOP time.Duration
	// BFrames is the number of B frames between consecutive reference frames.
	BFrames int
	// IWeight and BWeight are frame-size weights relative to a P frame
	// (weight 1.0). IWeight must be >= 1, BWeight in (0, 1].
	IWeight float64
	BWeight float64
	// Scenes configures the scene/motion model.
	Scenes SceneModel
}

// DefaultEncoderConfig returns the configuration matching the paper's clip:
// 1 Mbps (125,000 B/s), 24 fps, GOPs between 0.5 s and 16 s. The I-frame
// weight of 6 gives duration-based splicing the byte-overhead profile the
// paper describes (2 s splicing pays roughly 10%, 8 s roughly 2%).
func DefaultEncoderConfig() EncoderConfig {
	return EncoderConfig{
		FPS:            24,
		BytesPerSecond: 125_000,
		MinGOP:         500 * time.Millisecond,
		MaxGOP:         16 * time.Second,
		BFrames:        2,
		IWeight:        6,
		BWeight:        0.45,
		Scenes:         DefaultSceneModel(),
	}
}

// Validate reports whether the configuration is usable.
func (c EncoderConfig) Validate() error {
	if c.FPS <= 0 {
		return fmt.Errorf("media: FPS must be positive, got %d", c.FPS)
	}
	if c.BytesPerSecond <= 0 {
		return fmt.Errorf("media: BytesPerSecond must be positive, got %d", c.BytesPerSecond)
	}
	if c.MinGOP <= 0 || c.MaxGOP < c.MinGOP {
		return fmt.Errorf("media: need 0 < MinGOP <= MaxGOP, got %v/%v", c.MinGOP, c.MaxGOP)
	}
	if c.BFrames < 0 {
		return fmt.Errorf("media: BFrames must be non-negative, got %d", c.BFrames)
	}
	if c.IWeight < 1 {
		return fmt.Errorf("media: IWeight must be >= 1, got %v", c.IWeight)
	}
	if c.BWeight <= 0 || c.BWeight > 1 {
		return fmt.Errorf("media: BWeight must be in (0, 1], got %v", c.BWeight)
	}
	return c.Scenes.Validate()
}

// Synthesize encodes a synthetic clip of the given duration. The result is
// deterministic for a given (config, seed) pair.
func Synthesize(cfg EncoderConfig, duration time.Duration, seed int64) (*Video, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if duration <= 0 {
		return nil, fmt.Errorf("media: clip duration must be positive, got %v", duration)
	}
	rng := rand.New(rand.NewSource(seed))
	scenes, err := cfg.Scenes.Generate(rng, duration)
	if err != nil {
		return nil, err
	}

	frameDur := time.Second / time.Duration(cfg.FPS)
	totalFrames := int(duration / frameDur)
	if totalFrames == 0 {
		return nil, fmt.Errorf("media: clip of %v too short for %d fps", duration, cfg.FPS)
	}

	// Decide the frame type sequence: scene cuts and keyframe-interval expiry
	// force I frames; within a GOP, references are separated by cfg.BFrames
	// B frames.
	v := &Video{Config: cfg, ClipDuration: time.Duration(totalFrames) * frameDur, Seed: seed}
	sceneIdx := 0
	lastSceneIdx := -1 // forces an I frame on the very first frame
	var gop *GOP
	var gopStart time.Duration
	var sinceRef int // B frames emitted since the last reference frame

	closeGOP := func() {
		if gop != nil && len(gop.Frames) > 0 {
			v.GOPs = append(v.GOPs, *gop)
		}
		gop = nil
	}

	for i := 0; i < totalFrames; i++ {
		pts := time.Duration(i) * frameDur
		for sceneIdx+1 < len(scenes) && pts >= scenes[sceneIdx+1].Start {
			sceneIdx++
		}
		sc := scenes[sceneIdx]
		// Target keyframe interval for this scene. The curve is convex in
		// motion (geometric interpolation): typical scenes produce the short
		// GOPs real encoders emit (a keyframe every 0.5-2 s), and only truly
		// stationary scenes approach MaxGOP — the paper's "very long GOP"
		// case. A linear curve would make mid-motion scenes produce
		// implausibly large GOPs.
		ratio := math.Pow(float64(cfg.MaxGOP)/float64(cfg.MinGOP), math.Pow(1-sc.Motion, 1.8))
		gopTarget := time.Duration(float64(cfg.MinGOP) * ratio)
		if gopTarget > cfg.MaxGOP {
			gopTarget = cfg.MaxGOP
		}

		newGOP := gop == nil ||
			sceneIdx != lastSceneIdx || // scene cut (first frame of a new scene)
			pts-gopStart >= gopTarget // keyframe interval expired
		lastSceneIdx = sceneIdx

		var ft FrameType
		switch {
		case newGOP:
			closeGOP()
			gop = &GOP{}
			gopStart = pts
			sinceRef = 0
			ft = FrameI
		case cfg.BFrames > 0 && sinceRef < cfg.BFrames:
			ft = FrameB
			sinceRef++
		default:
			ft = FrameP
			sinceRef = 0
		}
		gop.Frames = append(gop.Frames, Frame{
			Index:    i,
			Type:     ft,
			PTS:      pts,
			Duration: frameDur,
		})
	}
	closeGOP()

	// Assign frame sizes GOP by GOP so the stream is CBR at GOP granularity:
	// each GOP's byte budget is rate * gopDuration, split by type weights.
	for gi := range v.GOPs {
		assignSizes(&v.GOPs[gi], cfg, sceneMotionAt(scenes, v.GOPs[gi].Start()))
	}
	return v, nil
}

// sceneMotionAt returns the motion level of the scene containing pts.
func sceneMotionAt(scenes []Scene, pts time.Duration) float64 {
	for i := len(scenes) - 1; i >= 0; i-- {
		if pts >= scenes[i].Start {
			return scenes[i].Motion
		}
	}
	return 0.5
}

// assignSizes distributes the GOP byte budget over its frames by type weight.
// Higher motion shrinks the I frame's share (inter frames carry more residual
// data when the picture changes quickly).
func assignSizes(g *GOP, cfg EncoderConfig, motion float64) {
	budget := int64(math.Round(float64(cfg.BytesPerSecond) * g.Duration().Seconds()))
	iw := cfg.IWeight * (1 - 0.35*motion)
	if iw < 1 {
		iw = 1
	}
	var totalW float64
	for _, f := range g.Frames {
		totalW += frameWeight(f.Type, iw, cfg.BWeight)
	}
	var assigned int64
	for i := range g.Frames {
		w := frameWeight(g.Frames[i].Type, iw, cfg.BWeight)
		sz := int64(float64(budget) * w / totalW)
		if sz < 1 {
			sz = 1
		}
		g.Frames[i].Bytes = sz
		assigned += sz
	}
	// Give any rounding remainder to the I frame so GOP totals are exact.
	if rem := budget - assigned; rem > 0 {
		g.Frames[0].Bytes += rem
	}
}

func frameWeight(t FrameType, iWeight, bWeight float64) float64 {
	switch t {
	case FrameI:
		return iWeight
	case FrameB:
		return bWeight
	default:
		return 1
	}
}
