package media

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// quickConfig builds a valid EncoderConfig from arbitrary generator input.
func quickConfig(r *rand.Rand) (EncoderConfig, time.Duration, int64) {
	cfg := DefaultEncoderConfig()
	cfg.FPS = 10 + r.Intn(50)
	cfg.BytesPerSecond = int64(16*1024 + r.Intn(512*1024))
	cfg.MinGOP = time.Duration(200+r.Intn(800)) * time.Millisecond
	cfg.MaxGOP = cfg.MinGOP + time.Duration(1+r.Intn(20))*time.Second
	cfg.BFrames = r.Intn(4)
	cfg.IWeight = 2 + 10*r.Float64()
	cfg.BWeight = 0.1 + 0.9*r.Float64()
	dur := time.Duration(2+r.Intn(60)) * time.Second
	return cfg, dur, r.Int63()
}

// Property: every synthesized clip passes structural validation regardless
// of configuration.
func TestQuickSynthesizeAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg, dur, s := quickConfig(r)
		v, err := Synthesize(cfg, dur, s)
		if err != nil {
			t.Logf("Synthesize(%+v, %v): %v", cfg, dur, err)
			return false
		}
		return v.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: GOP durations never exceed MaxGOP plus one frame of slack, and
// the per-GOP byte budget tracks rate * duration within rounding.
func TestQuickGOPBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg, dur, s := quickConfig(r)
		v, err := Synthesize(cfg, dur, s)
		if err != nil {
			return false
		}
		frameDur := time.Second / time.Duration(cfg.FPS)
		for _, g := range v.GOPs {
			if g.Duration() > cfg.MaxGOP+frameDur {
				t.Logf("GOP duration %v > MaxGOP %v", g.Duration(), cfg.MaxGOP)
				return false
			}
			want := float64(cfg.BytesPerSecond) * g.Duration().Seconds()
			got := float64(g.Bytes())
			// Small GOPs can deviate by a few bytes from rounding plus the
			// 1-byte-per-frame floor.
			if got < want-float64(len(g.Frames)) || got > want+float64(len(g.Frames)) {
				t.Logf("GOP bytes %v, want ~%v", got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: scene generation exactly tiles the requested duration.
func TestQuickScenesTile(t *testing.T) {
	f := func(seed int64, totalSecs uint8) bool {
		total := time.Duration(int(totalSecs)%300+1) * time.Second
		rng := rand.New(rand.NewSource(seed))
		scenes, err := DefaultSceneModel().Generate(rng, total)
		if err != nil {
			return false
		}
		var at time.Duration
		for _, s := range scenes {
			if s.Start != at || s.Duration <= 0 {
				return false
			}
			at += s.Duration
		}
		return at == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
