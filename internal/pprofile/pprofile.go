// Package pprofile is a minimal reader for pprof CPU profiles — the
// gzipped protobuf `runtime/pprof` emits — built on the standard
// library alone (the repo's zero-dependency rule). It decodes just
// enough of the profile.proto schema to answer the question the bench
// harness asks: which functions did the profiled run spend its time in?
//
// Decoded fields (profile.proto field numbers in parentheses):
//
//	Profile:  sample_type(1), sample(2), location(4), function(5),
//	          string_table(6), period(12)
//	ValueType: type(1), unit(2) — string-table indices
//	Sample:   location_id(1), value(2)
//	Location: id(1), line(4)
//	Line:     function_id(1)
//	Function: id(1), name(2)
//
// Flat cost attributes a sample's value to its leaf frame
// (location_id[0]); cumulative cost credits every distinct function on
// the stack once (recursion does not double-count). Values use the last
// sample type, which for CPU profiles is cpu/nanoseconds.
package pprofile

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Profile is a parsed CPU profile reduced to per-function costs.
type Profile struct {
	// SampleType and SampleUnit name the value dimension used for Flat
	// and Cum (the profile's last sample type, e.g. "cpu"/"nanoseconds").
	SampleType string
	SampleUnit string
	// Samples is the number of Sample records.
	Samples int64
	// Total is the sum of every sample's value.
	Total int64
	// Functions holds per-function costs, sorted by Flat descending
	// (ties broken by name for deterministic output).
	Functions []FuncStat
}

// FuncStat is one function's aggregate cost.
type FuncStat struct {
	Name string
	// Flat is the value attributed to samples whose leaf frame is this
	// function.
	Flat int64
	// Cum is the value of every sample with this function anywhere on
	// its stack.
	Cum int64
}

// FlatPercent returns f's flat cost as a percentage of total.
func (f FuncStat) FlatPercent(total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(f.Flat) / float64(total)
}

// Parse reads a pprof profile, gzipped (as runtime/pprof writes it) or
// raw.
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("pprofile: gunzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("pprofile: gunzip: %w", err)
		}
		data = raw
	}
	return parseProfile(data)
}

// errTruncated reports a message that ended mid-field.
var errTruncated = errors.New("pprofile: truncated protobuf")

// varint decodes a base-128 varint at data[i:], returning the value and
// the next offset, or an error on overflow/truncation.
func varint(data []byte, i int) (uint64, int, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if i >= len(data) {
			return 0, 0, errTruncated
		}
		b := data[i]
		i++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, i, nil
		}
	}
	return 0, 0, errors.New("pprofile: varint overflow")
}

// field decodes one protobuf field header + payload at data[i:]. For
// wire type 2 it returns the delimited bytes in buf; for wire type 0
// the value in num.
func field(data []byte, i int) (fieldNum int, wire int, num uint64, buf []byte, next int, err error) {
	tag, i, err := varint(data, i)
	if err != nil {
		return 0, 0, 0, nil, 0, err
	}
	fieldNum = int(tag >> 3)
	wire = int(tag & 7)
	switch wire {
	case 0: // varint
		num, i, err = varint(data, i)
		return fieldNum, wire, num, nil, i, err
	case 1: // fixed64
		if i+8 > len(data) {
			return 0, 0, 0, nil, 0, errTruncated
		}
		for k := 7; k >= 0; k-- {
			num = num<<8 | uint64(data[i+k])
		}
		return fieldNum, wire, num, nil, i + 8, nil
	case 2: // length-delimited
		n, j, err := varint(data, i)
		if err != nil {
			return 0, 0, 0, nil, 0, err
		}
		if n > uint64(len(data)-j) {
			return 0, 0, 0, nil, 0, errTruncated
		}
		return fieldNum, wire, 0, data[j : j+int(n)], j + int(n), nil
	case 5: // fixed32
		if i+4 > len(data) {
			return 0, 0, 0, nil, 0, errTruncated
		}
		for k := 3; k >= 0; k-- {
			num = num<<8 | uint64(data[i+k])
		}
		return fieldNum, wire, num, nil, i + 4, nil
	default:
		return 0, 0, 0, nil, 0, fmt.Errorf("pprofile: unsupported wire type %d", wire)
	}
}

// packedVarints decodes buf as a packed repeated varint payload. A
// single non-packed value is just the one-element case.
func packedVarints(buf []byte) ([]uint64, error) {
	var out []uint64
	for i := 0; i < len(buf); {
		v, j, err := varint(buf, i)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		i = j
	}
	return out, nil
}

type sampleRec struct {
	locIDs []uint64
	values []int64
}

func parseProfile(data []byte) (*Profile, error) {
	var (
		sampleTypes [][2]uint64 // (type, unit) string-table indices
		samples     []sampleRec
		locFunc     = map[uint64][]uint64{} // location id -> function ids, leaf line first
		funcName    = map[uint64]uint64{}   // function id -> name string index
		strings     []string
	)

	for i := 0; i < len(data); {
		fn, wire, _, buf, next, err := field(data, i)
		if err != nil {
			return nil, err
		}
		i = next
		switch fn {
		case 1: // sample_type: ValueType
			if wire != 2 {
				return nil, fmt.Errorf("pprofile: sample_type wire %d", wire)
			}
			var vt [2]uint64
			for j := 0; j < len(buf); {
				f, _, v, _, n, err := field(buf, j)
				if err != nil {
					return nil, err
				}
				j = n
				if f == 1 {
					vt[0] = v
				} else if f == 2 {
					vt[1] = v
				}
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample: Sample
			if wire != 2 {
				return nil, fmt.Errorf("pprofile: sample wire %d", wire)
			}
			var rec sampleRec
			for j := 0; j < len(buf); {
				f, w, v, b, n, err := field(buf, j)
				if err != nil {
					return nil, err
				}
				j = n
				switch f {
				case 1: // location_id
					if w == 2 {
						ids, err := packedVarints(b)
						if err != nil {
							return nil, err
						}
						rec.locIDs = append(rec.locIDs, ids...)
					} else {
						rec.locIDs = append(rec.locIDs, v)
					}
				case 2: // value
					if w == 2 {
						vs, err := packedVarints(b)
						if err != nil {
							return nil, err
						}
						for _, u := range vs {
							rec.values = append(rec.values, int64(u))
						}
					} else {
						rec.values = append(rec.values, int64(v))
					}
				}
			}
			samples = append(samples, rec)
		case 4: // location: Location
			if wire != 2 {
				return nil, fmt.Errorf("pprofile: location wire %d", wire)
			}
			var id uint64
			var fns []uint64
			for j := 0; j < len(buf); {
				f, w, v, b, n, err := field(buf, j)
				if err != nil {
					return nil, err
				}
				j = n
				switch f {
				case 1: // id
					id = v
				case 4: // line: Line
					if w != 2 {
						continue
					}
					for k := 0; k < len(b); {
						lf, _, lv, _, ln, err := field(b, k)
						if err != nil {
							return nil, err
						}
						k = ln
						if lf == 1 { // function_id
							fns = append(fns, lv)
						}
					}
				}
			}
			locFunc[id] = fns
		case 5: // function: Function
			if wire != 2 {
				return nil, fmt.Errorf("pprofile: function wire %d", wire)
			}
			var id, name uint64
			for j := 0; j < len(buf); {
				f, _, v, _, n, err := field(buf, j)
				if err != nil {
					return nil, err
				}
				j = n
				if f == 1 {
					id = v
				} else if f == 2 {
					name = v
				}
			}
			funcName[id] = name
		case 6: // string_table
			if wire != 2 {
				return nil, fmt.Errorf("pprofile: string_table wire %d", wire)
			}
			strings = append(strings, string(buf))
		}
	}

	if len(sampleTypes) == 0 {
		return nil, errors.New("pprofile: no sample types")
	}
	str := func(idx uint64) string {
		if idx < uint64(len(strings)) {
			return strings[idx]
		}
		return ""
	}
	// The last sample type is the default value dimension (cpu profiles:
	// samples/count, cpu/nanoseconds — we want the latter).
	vi := len(sampleTypes) - 1
	p := &Profile{
		SampleType: str(sampleTypes[vi][0]),
		SampleUnit: str(sampleTypes[vi][1]),
	}

	// locName resolves a location to its representative (leaf-line)
	// function name; inlined frames share a location, leaf line first.
	nameOf := func(loc uint64) string {
		fns := locFunc[loc]
		if len(fns) == 0 {
			return fmt.Sprintf("location#%d", loc)
		}
		return str(funcName[fns[0]])
	}

	flat := map[string]int64{}
	cum := map[string]int64{}
	for _, s := range samples {
		if len(s.values) <= vi {
			continue
		}
		v := s.values[vi]
		p.Samples++
		p.Total += v
		if len(s.locIDs) == 0 {
			continue
		}
		flat[nameOf(s.locIDs[0])] += v
		seen := map[string]bool{}
		for _, loc := range s.locIDs {
			// Every function on the location's inline stack accrues
			// cumulative cost, each at most once per sample.
			fns := locFunc[loc]
			if len(fns) == 0 {
				n := nameOf(loc)
				if !seen[n] {
					seen[n] = true
					cum[n] += v
				}
				continue
			}
			for _, fid := range fns {
				n := str(funcName[fid])
				if !seen[n] {
					seen[n] = true
					cum[n] += v
				}
			}
		}
	}

	for name, c := range cum {
		p.Functions = append(p.Functions, FuncStat{Name: name, Flat: flat[name], Cum: c})
	}
	sort.Slice(p.Functions, func(i, j int) bool {
		a, b := p.Functions[i], p.Functions[j]
		if a.Flat != b.Flat {
			return a.Flat > b.Flat
		}
		return a.Name < b.Name
	})
	return p, nil
}

// Top returns the first n functions (or all, if fewer).
func (p *Profile) Top(n int) []FuncStat {
	if n > len(p.Functions) {
		n = len(p.Functions)
	}
	return p.Functions[:n]
}
