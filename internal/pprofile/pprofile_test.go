package pprofile

import (
	"bytes"
	"runtime/pprof"
	"testing"
	"time"
)

// --- tiny protobuf writer, just enough to fabricate a profile ---

func putVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func putTag(b []byte, field, wire int) []byte {
	return putVarint(b, uint64(field)<<3|uint64(wire))
}

func putMsg(b []byte, field int, msg []byte) []byte {
	b = putTag(b, field, 2)
	b = putVarint(b, uint64(len(msg)))
	return append(b, msg...)
}

func putInt(b []byte, field int, v uint64) []byte {
	b = putTag(b, field, 0)
	return putVarint(b, v)
}

// synthProfile builds a two-sample CPU profile:
//
//	strings: 1=samples 2=count 3=cpu 4=nanoseconds 5=main.hot 6=main.caller
//	sample 1: stack [hot <- caller], values (3 samples, 300ns)  [packed]
//	sample 2: stack [caller],       values (1 sample, 100ns)   [unpacked]
func synthProfile() []byte {
	var p []byte
	for _, s := range []string{"", "samples", "count", "cpu", "nanoseconds", "main.hot", "main.caller"} {
		p = putMsg(p, 6, []byte(s))
	}
	var vt []byte
	vt = putInt(nil, 1, 1)
	vt = putInt(vt, 2, 2)
	p = putMsg(p, 1, vt) // samples/count
	vt = putInt(nil, 1, 3)
	vt = putInt(vt, 2, 4)
	p = putMsg(p, 1, vt) // cpu/nanoseconds

	for id, name := range map[uint64]uint64{1: 5, 2: 6} {
		var fn []byte
		fn = putInt(nil, 1, id)
		fn = putInt(fn, 2, name)
		p = putMsg(p, 5, fn)
	}
	for loc, fid := range map[uint64]uint64{10: 1, 20: 2} {
		line := putInt(nil, 1, fid)
		var lo []byte
		lo = putInt(nil, 1, loc)
		lo = putMsg(lo, 4, line)
		p = putMsg(p, 4, lo)
	}

	var s1 []byte
	locs := putVarint(putVarint(nil, 10), 20)
	s1 = putMsg(s1, 1, locs) // packed location_id
	vals := putVarint(putVarint(nil, 3), 300)
	s1 = putMsg(s1, 2, vals) // packed value
	p = putMsg(p, 2, s1)

	var s2 []byte
	s2 = putInt(s2, 1, 20) // unpacked location_id
	s2 = putInt(s2, 2, 1)  // unpacked values
	s2 = putInt(s2, 2, 100)
	p = putMsg(p, 2, s2)
	return p
}

func TestParseSynthetic(t *testing.T) {
	p, err := Parse(synthProfile())
	if err != nil {
		t.Fatal(err)
	}
	if p.SampleType != "cpu" || p.SampleUnit != "nanoseconds" {
		t.Fatalf("value dimension = %s/%s, want cpu/nanoseconds", p.SampleType, p.SampleUnit)
	}
	if p.Samples != 2 || p.Total != 400 {
		t.Fatalf("samples=%d total=%d, want 2/400", p.Samples, p.Total)
	}
	want := []FuncStat{
		{Name: "main.hot", Flat: 300, Cum: 300},
		{Name: "main.caller", Flat: 100, Cum: 400},
	}
	if len(p.Functions) != len(want) {
		t.Fatalf("functions = %+v, want %+v", p.Functions, want)
	}
	for i, w := range want {
		if p.Functions[i] != w {
			t.Errorf("functions[%d] = %+v, want %+v", i, p.Functions[i], w)
		}
	}
	if pct := p.Functions[0].FlatPercent(p.Total); pct != 75 {
		t.Errorf("hot flat%% = %v, want 75", pct)
	}
	if top := p.Top(1); len(top) != 1 || top[0].Name != "main.hot" {
		t.Errorf("Top(1) = %+v", top)
	}
	if top := p.Top(10); len(top) != 2 {
		t.Errorf("Top(10) = %+v", top)
	}
}

func TestParseTruncated(t *testing.T) {
	full := synthProfile()
	if _, err := Parse(full[:len(full)-3]); err == nil {
		t.Fatal("truncated profile parsed without error")
	}
	if _, err := Parse([]byte{0x1f, 0x8b, 0x00}); err == nil {
		t.Fatal("bogus gzip parsed without error")
	}
}

// TestParseLiveProfile round-trips a real runtime/pprof capture: the
// exact format the bench harness embeds in BENCH artifacts.
func TestParseLiveProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Fatal(err)
	}
	spin := time.Now()
	x := 0
	for time.Since(spin) < 400*time.Millisecond {
		for i := 0; i < 1000; i++ {
			x += i * i
		}
	}
	pprof.StopCPUProfile()
	_ = x

	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if p.SampleType != "cpu" || p.SampleUnit != "nanoseconds" {
		t.Fatalf("value dimension = %s/%s, want cpu/nanoseconds", p.SampleType, p.SampleUnit)
	}
	if p.Samples == 0 {
		t.Skip("profiler collected no samples in this environment")
	}
	if p.Total <= 0 || len(p.Functions) == 0 {
		t.Fatalf("degenerate live profile: total=%d functions=%d", p.Total, len(p.Functions))
	}
}
