// Package metrics aggregates playback measurements across peers and runs,
// and renders the text tables that stand in for the paper's figures.
package metrics

import (
	"fmt"
	"math"
	"time"
)

// PlaybackSample is one peer's playback outcome in one run.
type PlaybackSample struct {
	// Peer identifies the leecher within the swarm.
	Peer int
	// Startup is the startup delay.
	Startup time.Duration
	// Stalls is the number of stall periods.
	Stalls int
	// TotalStall is the summed stall time.
	TotalStall time.Duration
	// Finished reports whether the peer played the whole clip.
	Finished bool
}

// Summary aggregates samples (typically all leechers of one run, or the
// per-run means across repetitions).
type Summary struct {
	N                  int
	MeanStalls         float64
	MaxStalls          int
	MeanStallSeconds   float64
	MaxStallSeconds    float64
	MeanStartupSeconds float64
	MaxStartupSeconds  float64
	Unfinished         int
}

// Summarize aggregates samples. An empty slice yields a zero Summary.
func Summarize(samples []PlaybackSample) Summary {
	var s Summary
	s.N = len(samples)
	if s.N == 0 {
		return s
	}
	for _, p := range samples {
		s.MeanStalls += float64(p.Stalls)
		s.MeanStallSeconds += p.TotalStall.Seconds()
		s.MeanStartupSeconds += p.Startup.Seconds()
		if p.Stalls > s.MaxStalls {
			s.MaxStalls = p.Stalls
		}
		if v := p.TotalStall.Seconds(); v > s.MaxStallSeconds {
			s.MaxStallSeconds = v
		}
		if v := p.Startup.Seconds(); v > s.MaxStartupSeconds {
			s.MaxStartupSeconds = v
		}
		if !p.Finished {
			s.Unfinished++
		}
	}
	n := float64(s.N)
	s.MeanStalls /= n
	s.MeanStallSeconds /= n
	s.MeanStartupSeconds /= n
	return s
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// RoundedMean reproduces the paper's reporting: "ran the application three
// times for each bandwidth and took the rounded average".
func RoundedMean(xs []float64) int {
	return int(math.Round(Mean(xs)))
}

// FormatSeconds renders a seconds value compactly for tables.
func FormatSeconds(s float64) string {
	switch {
	case math.Abs(s) < 1e-9:
		// Values this close to zero are rounding residue from float
		// accumulation; render them as an exact zero.
		return "0"
	case s < 10:
		return fmt.Sprintf("%.1f", s)
	default:
		return fmt.Sprintf("%.0f", s)
	}
}
