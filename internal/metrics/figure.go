package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Series is one line of a figure: a named sequence of y-values over the
// shared x-axis.
type Series struct {
	Name   string
	Values []string
}

// Figure is a text rendering of one paper figure: an x-axis (e.g. the
// bandwidth sweep) and one series per splicing technique or policy.
type Figure struct {
	// Title names the figure ("Figure 2: Total number of stalls ...").
	Title string
	// XLabel names the x-axis column.
	XLabel string
	// XValues are the x-axis points, rendered as given.
	XValues []string
	// Series are the lines. Each must have len(Values) == len(XValues).
	Series []Series
}

// AddSeries appends a line to the figure.
func (f *Figure) AddSeries(name string, values []string) {
	f.Series = append(f.Series, Series{Name: name, Values: values})
}

// Validate checks that every series covers the x-axis.
func (f *Figure) Validate() error {
	if len(f.XValues) == 0 {
		return fmt.Errorf("metrics: figure %q has no x values", f.Title)
	}
	for _, s := range f.Series {
		if len(s.Values) != len(f.XValues) {
			return fmt.Errorf("metrics: figure %q: series %q has %d values, want %d",
				f.Title, s.Name, len(s.Values), len(f.XValues))
		}
	}
	return nil
}

// Render produces an aligned text table:
//
//	Figure 2: ...
//	Available Bandwidth (kB/s) | gop | 2s | 4s | 8s
//	128                        |  24 | 14 | 11 | 16
func (f *Figure) Render() string {
	var b strings.Builder
	b.WriteString(f.Title)
	b.WriteByte('\n')
	if err := f.Validate(); err != nil {
		b.WriteString("  <" + err.Error() + ">\n")
		return b.String()
	}
	// Column widths.
	cols := make([][]string, 1+len(f.Series))
	cols[0] = append([]string{f.XLabel}, f.XValues...)
	for i, s := range f.Series {
		cols[i+1] = append([]string{s.Name}, s.Values...)
	}
	widths := make([]int, len(cols))
	for i, col := range cols {
		for _, cell := range col {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	nRows := len(f.XValues) + 1
	for r := 0; r < nRows; r++ {
		for c, col := range cols {
			if c == 0 {
				fmt.Fprintf(&b, "%-*s", widths[c], col[r])
			} else {
				fmt.Fprintf(&b, " | %*s", widths[c], col[r])
			}
		}
		b.WriteByte('\n')
		if r == 0 {
			// Separator under the header.
			total := widths[0]
			for _, w := range widths[1:] {
				total += w + 3
			}
			b.WriteString(strings.Repeat("-", total))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// WriteCSV renders the figure as CSV: a header with the x-label and series
// names, then one row per x value.
func (f *Figure) WriteCSV(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("metrics: write csv: %w", err)
	}
	for i, x := range f.XValues {
		row := []string{x}
		for _, s := range f.Series {
			row = append(row, s.Values[i])
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: write csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("metrics: write csv: %w", err)
	}
	return nil
}
