package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarize(t *testing.T) {
	samples := []PlaybackSample{
		{Peer: 1, Startup: 2 * time.Second, Stalls: 3, TotalStall: 6 * time.Second, Finished: true},
		{Peer: 2, Startup: 4 * time.Second, Stalls: 1, TotalStall: 2 * time.Second, Finished: true},
		{Peer: 3, Startup: 6 * time.Second, Stalls: 5, TotalStall: 10 * time.Second, Finished: false},
	}
	s := Summarize(samples)
	if s.N != 3 {
		t.Errorf("N = %d, want 3", s.N)
	}
	if s.MeanStalls != 3 {
		t.Errorf("MeanStalls = %v, want 3", s.MeanStalls)
	}
	if s.MaxStalls != 5 {
		t.Errorf("MaxStalls = %d, want 5", s.MaxStalls)
	}
	if s.MeanStallSeconds != 6 {
		t.Errorf("MeanStallSeconds = %v, want 6", s.MeanStallSeconds)
	}
	if s.MaxStallSeconds != 10 {
		t.Errorf("MaxStallSeconds = %v, want 10", s.MaxStallSeconds)
	}
	if s.MeanStartupSeconds != 4 {
		t.Errorf("MeanStartupSeconds = %v, want 4", s.MeanStartupSeconds)
	}
	if s.MaxStartupSeconds != 6 {
		t.Errorf("MaxStartupSeconds = %v, want 6", s.MaxStartupSeconds)
	}
	if s.Unfinished != 1 {
		t.Errorf("Unfinished = %d, want 1", s.Unfinished)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.MeanStalls != 0 || s.MaxStalls != 0 {
		t.Errorf("empty summary not zero: %+v", s)
	}
}

func TestMeanStdDev(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v, want 4", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %v, want 0", got)
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138) > 0.01 {
		t.Errorf("StdDev = %v, want ~2.138", got)
	}
}

func TestRoundedMean(t *testing.T) {
	tests := []struct {
		xs   []float64
		want int
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{1, 2}, 2}, // 1.5 rounds up
		{[]float64{0.4}, 0},
		{nil, 0},
	}
	for _, tt := range tests {
		if got := RoundedMean(tt.xs); got != tt.want {
			t.Errorf("RoundedMean(%v) = %d, want %d", tt.xs, got, tt.want)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{1.25, "1.2"},
		{9.99, "10.0"},
		{12.4, "12"},
	}
	for _, tt := range tests {
		if got := FormatSeconds(tt.in); got != tt.want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{
		Title:   "Figure X: test",
		XLabel:  "Bandwidth (kB/s)",
		XValues: []string{"128", "256"},
	}
	f.AddSeries("gop", []string{"24", "10"})
	f.AddSeries("4s", []string{"11", "4"})
	out := f.Render()
	for _, want := range []string{"Figure X: test", "Bandwidth (kB/s)", "gop", "4s", "128", "24", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 data rows.
	if len(lines) != 5 {
		t.Errorf("Render() produced %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestFigureValidate(t *testing.T) {
	f := Figure{Title: "t", XLabel: "x", XValues: []string{"1", "2"}}
	f.AddSeries("bad", []string{"only-one"})
	if err := f.Validate(); err == nil {
		t.Error("mismatched series: want error")
	}
	if out := f.Render(); !strings.Contains(out, "<") {
		t.Error("Render of invalid figure should embed the error")
	}
	empty := Figure{Title: "t"}
	if err := empty.Validate(); err == nil {
		t.Error("empty x-axis: want error")
	}
}

func TestQuickSummarizeBounds(t *testing.T) {
	f := func(stalls []uint8) bool {
		samples := make([]PlaybackSample, len(stalls))
		var maxStalls int
		var sum float64
		for i, st := range stalls {
			samples[i] = PlaybackSample{Peer: i, Stalls: int(st)}
			if int(st) > maxStalls {
				maxStalls = int(st)
			}
			sum += float64(st)
		}
		s := Summarize(samples)
		if len(stalls) == 0 {
			return s.N == 0
		}
		mean := sum / float64(len(stalls))
		return s.N == len(stalls) && s.MaxStalls == maxStalls &&
			math.Abs(s.MeanStalls-mean) < 1e-9 && s.MeanStalls <= float64(s.MaxStalls)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFigureWriteCSV(t *testing.T) {
	f := Figure{Title: "t", XLabel: "bw", XValues: []string{"128", "256"}}
	f.AddSeries("gop", []string{"5", "1"})
	f.AddSeries("4s", []string{"8", "1"})
	var buf strings.Builder
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "bw,gop,4s\n128,5,8\n256,1,1\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
	bad := Figure{Title: "t"}
	if err := bad.WriteCSV(&buf); err == nil {
		t.Error("invalid figure: want error")
	}
}
